"""The multi-threaded execution engine.

:class:`Engine` is the real-traffic counterpart of
:class:`~repro.txn.manager.TransactionManager`: the same protocol planning,
interpreter execution and undo-log recovery, but driven by OS threads with
*blocking* lock acquisition (:class:`~repro.engine.locks.BlockingLockManager`)
and a background deadlock detector
(:class:`~repro.engine.detector.DeadlockDetector`) instead of the
fail-fast :class:`~repro.errors.LockConflictError` behaviour.

Concurrency contract:

* one :class:`Engine` serves any number of threads;
* one :class:`~repro.engine.session.Session` (and its transaction) must be
  driven by a single thread at a time;
* strict two-phase locking — locks accumulate per transaction and are
  released only by commit or abort, so the commit order is a serialisation
  order and the engine records it (:attr:`commit_log`) for the harness's
  sequential-replay serializability check.

The engine is optionally *durable*: a :class:`~repro.wal.durability.Durability`
configuration attaches one :class:`~repro.wal.log.WriteAheadLog` per shard
(TAV-projected before-images write-through before every store write, redo
images and a PREPARED marker flushed at 2PC prepare), makes the
coordinator's decision log a durable file whose commit record remains the
serialisation point, and runs a
:class:`~repro.wal.checkpoint.CheckpointManager` that snapshots each shard
and truncates its log.  After a crash,
:class:`~repro.wal.recovery_runner.RecoveryRunner` rebuilds the committed
state with presumed abort for in-doubt transactions.

The engine is *sharded*: lock management, undo logging and (when the store
is a :class:`~repro.sharding.store.ShardedObjectStore`) the data itself are
partitioned across N shards by a :class:`~repro.sharding.router.ShardRouter`,
so unrelated transactions never touch the same mutex or condition variable.
A transaction that spans shards commits through two-phase commit
(:class:`~repro.sharding.twopc.TwoPhaseCommitCoordinator`): every touched
shard prepares its before-image log, one global commit record — appended
under the engine's commit mutex, which also orders :attr:`commit_log` —
fixes the serialisation point, and only then are the shards' undo logs
discarded and the locks released.  ``shards=1`` (the default) degenerates to
the familiar single-manager behaviour with the same code path.

The engine is optionally *distributed*: ``shard_workers=N`` spawns one
``python -m repro.sharding.worker`` process per shard — each owning its
shard's store partition, lock manager, undo log and WAL — and routes
locking, execution and two-phase commit through the participant RPC layer
(:mod:`repro.sharding.rpc`).  The engine's own store becomes a *planning
mirror*: single-shard operations ship to the owning worker in one round
trip (method bodies run on the worker's cores — the multi-core path) and
the applied writes are echoed back; cross-shard operations execute here
against a store front that reads/writes fields through the owning workers.
An unreachable worker is a typed
:class:`~repro.errors.ParticipantUnavailable`: a no vote during prepare,
a tolerated completion during phase two (the durable decision log already
fixed the outcome, and the worker finishes the transaction from it when
restarted — per-participant recovery).

The engine owns a detector thread, so it should be closed when done; it is a
context manager (``with Engine(protocol) as engine: ...``).
"""

from __future__ import annotations

import contextlib
import itertools
import random
import signal as signal_module
import threading
import time
from typing import Any, Callable, Hashable, Mapping, Sequence, TypeVar

from repro.analysis.sanitizer import (
    SanitizedStoreFront,
    Sanitizer,
    sanitize_from_env,
)
from repro.analysis.coverage import lock_covers
from repro.api.messages import request_for_operation
from repro.core.commutativity import EscrowUpdate, evaluate_escrow_delta
from repro.engine.detector import DeadlockDetector
from repro.engine.locks import USE_DEFAULT_TIMEOUT, BlockingLockManager
from repro.engine.metrics import EngineMetrics
from repro.obs.histogram import LatencyHistogram
from repro.obs.tracing import Span, TraceContext, Tracer, write_chrome_trace
from repro.engine.session import Session
from repro.errors import (
    DeadlockError,
    LockTimeoutError,
    ParticipantUnavailable,
    TransactionError,
    TwoPhaseCommitError,
)
from repro.locking.modes import EscrowMode
from repro.objects.interpreter import Interpreter, default_builtins
from repro.objects.oid import OID
from repro.objects.store import ObjectStore
from repro.sharding.locks import ShardedLockFront
from repro.sharding.recovery import ShardedRecoveryManager
from repro.sharding.router import HashShardRouter, ShardRouter
from repro.sharding.rpc import DEFAULT_PARTICIPANT_TIMEOUT, RemoteShardClient
from repro.sharding.twopc import ShardParticipant, TwoPhaseCommitCoordinator
from repro.sim.workload import TransactionSpec
from repro.txn.escrow import EscrowLedger
from repro.txn.operations import MethodCall, Operation
from repro.txn.plan_cache import PlanCache
from repro.txn.protocols.base import (
    ConcurrencyControlProtocol,
    LockPlan,
    LockRequestSpec,
)
from repro.txn.transaction import Transaction, TransactionState
from repro.wal.checkpoint import CheckpointManager, ShardCheckpoint
from repro.wal.durability import Durability
from repro.wal.log import DecisionLog, WriteAheadLog
from repro.wal.records import InstanceCreated, InstanceDeleted

T = TypeVar("T")

#: Bound on plan-refresh rounds after all locks of the current plan are held.
#: Each round only ever *adds* requests, and plans are derived from a finite
#: store, so two rounds normally reach the fixpoint; the bound guards against
#: a pathological workload growing the store faster than it can be planned.
_MAX_REPLAN_ROUNDS = 16


class Engine:
    """Runs transactions from many threads under strict 2PL with blocking locks."""

    def __init__(self, protocol: ConcurrencyControlProtocol, *,
                 builtins: Mapping[str, Callable[..., Any]] | None = None,
                 detection_interval: float = 0.02,
                 default_lock_timeout: float | None = None,
                 max_retries: int = 20,
                 backoff_base: float = 0.001,
                 backoff_cap: float = 0.05,
                 shards: int | None = None,
                 router: ShardRouter | None = None,
                 durability: Durability | None = None,
                 shard_workers: int | None = None,
                 worker_options: Mapping[str, Any] | None = None,
                 replicas: int = 0,
                 participant_timeout: float = DEFAULT_PARTICIPANT_TIMEOUT,
                 vectored_rpc: bool = True,
                 tracer: Tracer | None = None,
                 sanitize: bool | None = None,
                 escrow: bool = False) -> None:
        self._protocol = protocol
        self._store = protocol.store
        if sanitize is None:
            sanitize = sanitize_from_env()
        #: Runtime 2PL/write-ahead sanitizer, or ``None`` when not opted in.
        self._sanitizer: Sanitizer | None = (
            Sanitizer(protocol) if sanitize else None)
        if shard_workers is not None:
            if shard_workers < 1:
                raise ValueError(f"shard_workers must be at least 1, "
                                 f"got {shard_workers}")
            if builtins is not None:
                raise ValueError("custom builtins cannot cross the worker "
                                 "process boundary; register them in "
                                 "repro.sharding.worker instead")
            if shards is None:
                shards = shard_workers
            elif shards != shard_workers:
                raise ValueError(f"shards={shards} disagrees with "
                                 f"shard_workers={shard_workers}")
        self._router = self._resolve_router(shards, router)
        num_shards = self._router.num_shards
        if shard_workers is not None and num_shards != shard_workers:
            raise ValueError(f"shard_workers={shard_workers} disagrees with "
                             f"the router's {num_shards} shards")
        #: Original begin timestamp per live incarnation (wait-die victim age).
        self._origins: dict[int, int] = {}
        #: Live sessions by transaction id — the registry the API dispatcher
        #: resolves command ``txn`` handles against.  Mutated by the owning
        #: session's thread only, via CPython-atomic dict operations.
        self._sessions: dict[int, Session] = {}
        self._api: Any = None
        #: Out-of-process mode: one RemoteShardClient per shard worker, or
        #: ``None`` for the classic everything-in-this-interpreter engine.
        self._workers: tuple[RemoteShardClient, ...] | None = None
        self._worker_processes: list[Any] = []
        self._durability = durability if durability is not None else Durability.off()
        #: Hot-standby topology: ``replicas`` standby workers per shard,
        #: each continuously replaying its primary's shipped WAL stream.
        #: :meth:`failover` promotes one and re-admits it without restart.
        self._replicas = int(replicas)
        self._standbys: list[list[RemoteShardClient]] = []
        self._failovers = 0
        if self._replicas < 0:
            raise ValueError(f"replicas must be >= 0, got {replicas}")
        if self._replicas:
            if shard_workers is None:
                raise ValueError("standby replicas need shard worker mode "
                                 "(pass shard_workers)")
            if not self._durability.enabled:
                raise ValueError("standby replicas replay the WAL stream; "
                                 "run with durability lazy or fsync")
        self._wals: tuple[WriteAheadLog | None, ...] = (None,) * num_shards
        self._decision_log: DecisionLog | None = None
        self._checkpointer: CheckpointManager | None = None
        #: Escrow admission was asked for; the ledger exists only in-process
        #: (worker partitions cannot merge deltas yet — requests there are
        #: counted as fallbacks instead).
        self._escrow_requested = bool(escrow)
        self._escrow: EscrowLedger | None = None
        if self._durability.enabled:
            self._durability.prepare_directory(num_shards)
            self._decision_log = DecisionLog(
                self._durability.decisions_path,
                sync_on_commit=self._durability.fsync,
                group_window=self._durability.group_commit_window)
        if shard_workers is None:
            if self._durability.enabled:
                self._wals = tuple(
                    WriteAheadLog(self._durability.wal_path(shard_id),
                                  sync_on_barrier=self._durability.fsync)
                    for shard_id in range(num_shards))
            shard_managers = [
                BlockingLockManager(protocol.create_lock_manager(),
                                    default_timeout=default_lock_timeout)
                for _ in range(num_shards)
            ]
            self._locks = ShardedLockFront(shard_managers, self._router,
                                           victim_key=self._victim_age)
            self._recovery = ShardedRecoveryManager(self._store, self._router,
                                                    wals=self._wals)
            participants: Sequence[Any] = [
                ShardParticipant(shard_id,
                                 self._recovery.shard_manager(shard_id),
                                 wal=self._wals[shard_id])
                for shard_id in range(num_shards)
            ]
        else:
            # Each shard runs in its own OS process: the shard's store
            # partition, lock manager, undo log and WAL live in the worker;
            # this engine keeps a *mirror* store (its own protocol store,
            # populated identically) for planning, plus mirror undo logs so
            # plans keep seeing current values (see _execute_remote).
            participants = self._spawn_workers(
                shard_workers, worker_options,
                default_lock_timeout=default_lock_timeout,
                participant_timeout=participant_timeout)
            self._workers = tuple(participants)
            self._locks = ShardedLockFront(list(participants), self._router,
                                           victim_key=self._victim_age)
            self._recovery = ShardedRecoveryManager(self._store, self._router,
                                                    wals=None)
        self._coordinator = TwoPhaseCommitCoordinator(
            participants, decision_log=self._decision_log)
        if self._durability.enabled and shard_workers is None:
            self._checkpointer = CheckpointManager(
                self._store, self._router, self._recovery,
                [wal for wal in self._wals if wal is not None],
                self._durability, decision_log=self._decision_log,
                extra_pending=self._escrow_pending)
            # The base checkpoint: instances created before the engine
            # existed (population) are durable from the very first moment —
            # the WAL only ever has to carry field updates.  (In worker mode
            # each worker writes its own partition's base checkpoint.)
            self._checkpointer.checkpoint()
            if self._durability.checkpoint_interval is not None:
                self._checkpointer.start(self._durability.checkpoint_interval)
        interpreter_store: Any = self._store
        if self._sanitizer is not None:
            interpreter_store = SanitizedStoreFront(self._store,
                                                    self._sanitizer)
        self._interpreter = Interpreter(interpreter_store, builtins=builtins)
        #: The builtins escrow-delta evaluation and snapshot interpreters
        #: share with the main interpreter (delta expressions may call them).
        self._builtins_arg = dict(builtins) if builtins else None
        self._merged_builtins = dict(default_builtins())
        if builtins:
            self._merged_builtins.update(builtins)
        if self._escrow_requested and self._workers is None:
            # Apply writes through the sanitized front when sanitizing, so
            # every escrow merge is coverage-checked against its EscrowMode
            # lock; undo reversals run outside any operation scope and pass
            # through (exactly like the recovery manager's image restores).
            self._escrow = EscrowLedger(interpreter_store, self._router,
                                        num_shards, wals=self._wals)
        #: Memoized structural lock plans (the hot path's dict hit).
        self._plans = PlanCache(protocol)
        #: Bumped by structural changes (create/delete); part of the
        #: snapshot-read cache key and the plan cache's invalidation epoch.
        self._structural_epoch = 0
        #: ``(key, interpreter)`` of the last built read-only snapshot.
        self._snapshot_cache: tuple[tuple[int, int], Interpreter] | None = None
        self._snapshot_mutex = threading.Lock()
        #: One-round-trip mode (worker engines only): vectored acquire
        #: batches, fused single-shard plan+execute, mirror-backed
        #: cross-shard reads and deferred writes that piggyback on prepare.
        #: ``vectored_rpc=False`` keeps the classic one-RPC-per-step wire
        #: behaviour for A/B measurement.
        self._vectored = bool(vectored_rpc) and self._workers is not None
        #: Deferred before-images per transaction per shard, flushed with
        #: the next Execute to that shard or staged onto its Prepare.
        self._deferred_images: dict[int, dict[int, list]] = {}
        self._remote_interpreter: Interpreter | None = None
        self._remote_front: _WorkerStoreFront | None = None
        if self._workers is not None:
            self._remote_front = _WorkerStoreFront(
                self._store, self._router, self._workers,
                deferred=self._vectored)
            remote_store: Any = self._remote_front
            if self._sanitizer is not None:
                remote_store = SanitizedStoreFront(remote_store,
                                                   self._sanitizer)
            self._remote_interpreter = Interpreter(remote_store)
        self._ids = itertools.count(1)
        self._max_retries = max_retries
        self._backoff_base = backoff_base
        self._backoff_cap = backoff_cap
        self._backoff_rng = random.Random(0x5eed)
        self._rng_mutex = threading.Lock()
        self._commit_mutex = threading.Lock()
        self._commit_log: list[tuple[int, str]] = []
        self.metrics = EngineMetrics()
        #: Observability wiring: the coordinator's tolerated-unavailable
        #: count, barrier durations (decision log and local WALs) and worker
        #: RPC round trips all land in the engine's metrics/histograms.
        self._coordinator.on_unavailable = self.metrics.record_unavailable
        record_barrier = (
            lambda seconds: self.metrics.record_latency("barrier", seconds))
        if self._decision_log is not None:
            self._decision_log.on_barrier = record_barrier
        for wal in self._wals:
            if wal is not None:
                wal.on_barrier = record_barrier
        if self._workers is not None:
            for client in self._workers:
                client.on_rpc = (
                    lambda seconds: self.metrics.record_latency("rpc", seconds))
                client.on_request = self.metrics.record_rpc_requests
        #: Tracing: off unless a tracer is injected.  Root spans of live
        #: traced transactions, by txn id (session-thread confined).
        self._tracer = tracer
        self._traces: dict[int, Span] = {}
        self._detector = DeadlockDetector(
            self._locks, interval=detection_interval,
            on_deadlock=lambda victims: self.metrics.record_deadlocks(len(victims)))
        self._locks.on_block = self._detector.nudge
        self._closed = False
        self._detector.start()

    def _resolve_router(self, shards: int | None,
                        router: ShardRouter | None) -> ShardRouter:
        """One router for locks, undo logs and (if sharded) the store.

        A sharded store brings its own router; adopting it keeps lock and
        data placement aligned so a single-shard transaction really is
        single-shard.  Explicit ``shards``/``router`` arguments must agree
        with it (and with each other).
        """
        store_router = getattr(self._store, "router", None)
        if router is None:
            router = store_router
        elif store_router is not None and router is not store_router:
            raise ValueError("pass either a sharded store or a router, "
                             "not two different placements")
        if router is None:
            return HashShardRouter(shards if shards is not None else 1)
        if shards is not None and shards != router.num_shards:
            raise ValueError(f"shards={shards} disagrees with the router's "
                             f"{router.num_shards} shards")
        return router

    def _spawn_workers(self, shard_workers: int,
                       worker_options: Mapping[str, Any] | None, *,
                       default_lock_timeout: float | None,
                       participant_timeout: float,
                       ) -> list[RemoteShardClient]:
        """Spawn one shard worker process per shard and connect clients.

        ``worker_options`` carries what the engine cannot derive: the
        deterministic population every worker must rebuild (``schema`` name,
        ``instances`` per class, ``populate_seed``) — it must match how this
        engine's own store was populated, or plans and partitions disagree.
        Each worker's ``hello`` answer is checked against the expectation.
        """
        from repro.sharding import worker as worker_module

        options = dict(worker_options or {})
        spawn_options = {
            "protocol": options.pop(
                "protocol", getattr(type(self._protocol), "name",
                                    type(self._protocol).__name__)),
            "schema": options.pop("schema", "banking"),
            "instances": int(options.pop("instances", 4)),
            "populate_seed": int(options.pop("populate_seed", 11)),
            # None passes through: wait-forever means the same thing on
            # both sides of the process boundary.
            "lock_timeout": options.pop("lock_timeout", default_lock_timeout),
            "durability": self._durability.mode,
        }
        if self._durability.enabled:
            spawn_options["wal_dir"] = self._durability.root
        if options:
            raise ValueError(f"unknown worker options {sorted(options)}")
        clients: list[RemoteShardClient] = []
        try:
            for shard_id in range(shard_workers):
                # Standbys first: the primary's shipper wants their
                # addresses at spawn time so streaming starts immediately.
                standbys: list[RemoteShardClient] = []
                for slot in range(self._replicas):
                    process, address = worker_module.spawn(
                        shard_id=shard_id, shards=shard_workers,
                        role="standby", standby_slot=slot, **spawn_options)
                    self._worker_processes.append(process)
                    standbys.append(RemoteShardClient(
                        shard_id, address,
                        participant_timeout=participant_timeout,
                        lock_timeout=spawn_options["lock_timeout"]))
                self._standbys.append(standbys)
                process, address = worker_module.spawn(
                    shard_id=shard_id, shards=shard_workers,
                    ship_to=[standby.address for standby in standbys],
                    **spawn_options)
                self._worker_processes.append(process)
                clients.append(RemoteShardClient(
                    shard_id, address,
                    participant_timeout=participant_timeout,
                    lock_timeout=spawn_options["lock_timeout"]))
            for client, role in ([(client, "primary") for client in clients]
                                 + [(standby, "standby")
                                    for shard in self._standbys
                                    for standby in shard]):
                answer = client.hello()
                for key, expected in (("shard", client.shard_id),
                                      ("shards", shard_workers),
                                      ("role", role),
                                      ("protocol", spawn_options["protocol"]),
                                      ("schema", spawn_options["schema"]),
                                      ("instances", spawn_options["instances"]),
                                      ("populate_seed",
                                       spawn_options["populate_seed"])):
                    if answer.get(key) != expected:
                        raise ValueError(
                            f"worker {client.shard_id} answered "
                            f"{key}={answer.get(key)!r}, expected "
                            f"{expected!r}")
            # The handshake above proves the workers match the *options*;
            # this proves the options match the engine's actual mirror
            # store — a mis-populated mirror would otherwise corrupt
            # silently (plans and partitions disagreeing on values).
            merged: dict[str, Any] = {}
            for client in clients:
                merged.update(client.snapshot())
            mirror = {str(instance.oid): dict(instance.values)
                      for instance in self._store}
            if merged != mirror:
                raise ValueError(
                    "the workers' partitions disagree with the engine's "
                    "store — worker_options (schema/instances/populate_seed) "
                    "must describe exactly how the engine's store was "
                    "populated")
        except BaseException:
            self._teardown_workers(clients)
            if self._decision_log is not None:
                self._decision_log.close()
            raise
        return clients

    def _teardown_workers(self, clients: Sequence[RemoteShardClient]) -> None:
        for client in clients:
            client.shutdown()
            client.close()
        for standbys in self._standbys:
            for client in standbys:
                client.shutdown()
                client.close()
        self._standbys.clear()
        for process in self._worker_processes:
            if process.poll() is None:
                process.send_signal(signal_module.SIGTERM)
        for process in self._worker_processes:
            try:
                process.wait(timeout=10.0)
            except Exception:
                process.kill()
                process.wait()
        self._worker_processes.clear()

    # -- failover and re-admission ------------------------------------------------

    def failover(self, shard_id: int) -> dict[str, Any]:
        """Promote ``shard_id``'s standby and re-admit it as the primary.

        The standby runs the same presumed-abort resolution crash recovery
        uses — over its own replayed log, against the coordinator's durable
        decision log, so every in-flight transaction the dead primary left
        behind is redone (durable commit record) or undone (none) — then
        flips to the primary role.  This *running* engine re-points the
        shard's RPC client at it (coordinator, lock front and store front
        all route through that one client object) and resyncs the planning
        mirror from the promoted partition, so new work flows without an
        engine restart; transactions that lost locks with the old primary
        abort and retry through the usual machinery.

        Returns the worker's promotion report (the recovery summary).

        Raises:
            TransactionError: not in worker mode, or no standby to promote.
        """
        self._ensure_open()
        if self._workers is None:
            raise TransactionError("failover requires shard worker mode")
        if not 0 <= shard_id < len(self._workers):
            raise ValueError(f"unknown shard {shard_id}")
        standbys = (self._standbys[shard_id]
                    if shard_id < len(self._standbys) else [])
        if not standbys:
            raise TransactionError(
                f"shard {shard_id} has no standby to promote")
        standby = standbys.pop(0)
        try:
            answer = standby.promote()
            address = standby.address
        finally:
            standby.close()
        self.readmit_worker(shard_id, address=address)
        self._failovers += 1
        return answer

    def readmit_worker(self, shard_id: int,
                       address: tuple[str, int] | None = None) -> dict[str, Any]:
        """Re-admit a promoted or restarted worker into the running engine.

        Retargets the shard's :class:`RemoteShardClient` when the worker
        moved (``address``), verifies the hello handshake the same way the
        original spawn did, and resyncs the planning mirror's partition
        from the worker's snapshot so plans see the recovered values.
        Returns the hello answer (which carries the recovery or promotion
        report, when there is one).
        """
        self._ensure_open()
        if self._workers is None:
            raise TransactionError(
                "worker re-admission requires shard worker mode")
        client = self._workers[shard_id]
        if address is not None:
            client.retarget((str(address[0]), int(address[1])))
        answer = client.hello()
        for key, expected in (("shard", shard_id), ("role", "primary"),
                              ("shards", len(self._workers))):
            if answer.get(key) != expected:
                raise ValueError(
                    f"re-admitted worker for shard {shard_id} answered "
                    f"{key}={answer.get(key)!r}, expected {expected!r}")
        self._resync_mirror(shard_id, client.snapshot())
        return answer

    def _resync_mirror(self, shard_id: int,
                       snapshot: Mapping[str, Mapping[str, Any]]) -> None:
        """Overwrite the mirror's partition with the worker's ground truth.

        The promoted (or recovered) partition is the authority; whatever
        the mirror held for that shard — including writes of transactions
        whose fate the failover changed — is replaced wholesale.
        """
        seen: set[OID] = set()
        for oid_text, values in snapshot.items():
            class_name, _, number = oid_text.partition("#")
            oid = OID(class_name=class_name, number=int(number))
            seen.add(oid)
            if oid in self._store:
                instance = self._store.get(oid)
                for name, value in values.items():
                    instance.set(name, value)
            else:
                self._store.restore_instance(oid, class_name, dict(values))
        for instance in list(self._store):
            if (instance.oid not in seen
                    and self._router.shard_of_oid(instance.oid) == shard_id):
                self._store.delete(instance.oid)

    def _touched_shards(self, txn: int) -> list[int]:
        """The shards ``txn`` locked or wrote on, sorted (2PC participant set).

        Every protocol's undo records sit on shards the transaction also
        locked (writes are always locked at instance/tuple/field granularity
        on the written instance's shard), but the union keeps the participant
        set correct for any future protocol that logs where it does not lock.
        """
        locked = self._locks.touched_view(txn)
        wrote = self._recovery.touched_view(txn)
        if not wrote:
            return sorted(locked) if locked else []
        return sorted(set().union(locked or (), wrote))

    def _victim_age(self, txn: int) -> Hashable:
        """Deadlock-victim age order: youngest *origin* first, id tie-break.

        A retried incarnation registered its first incarnation's timestamp in
        :attr:`_origins`, so it ranks as old as its original work (wait-die
        style) instead of always being the youngest — that is what stops a
        long transaction from being re-victimised on every retry.
        """
        return (self._origins.get(txn, txn), txn)

    def _escrow_pending(self, shard_id: int) -> tuple[int, ...]:
        """The escrow ledger's keep-set contribution for one shard's checkpoint."""
        return () if self._escrow is None else self._escrow.pending(shard_id)

    # -- life cycle -------------------------------------------------------------

    def begin(self, label: str = "", origin: int | None = None,
              trace: object = None, *, read_only: bool = False) -> Session:
        """Start a transaction and return the session handle driving it.

        ``origin`` is the begin timestamp of the transaction's *first*
        incarnation; retrying callers pass the original so deadlock victim
        selection ranks the retry by when its work actually began
        (:meth:`run_transaction` does this automatically).  A non-``None``
        origin also marks the incarnation as a retry in the metrics — that
        is how retries driven by *remote* clients (whose retry loop runs on
        the other side of a connection) still show up in the engine's
        numbers.

        ``trace`` is an optional wire trace context from the client (a
        ``Begin`` frame's ``trace`` field): when the engine has a tracer,
        the transaction joins that trace unconditionally — whoever started
        it already made the sampling call.  Without a client context, a
        tracer samples locally (``sample_every``).
        """
        self._ensure_open()
        transaction = Transaction(txn_id=next(self._ids), origin=origin,
                                  read_only=read_only)
        self._origins[transaction.txn_id] = transaction.origin
        self.metrics.record_begin()
        if origin is not None:
            self.metrics.record_retry()
        session = Session(self, transaction, label=label)
        self._sessions[transaction.txn_id] = session
        if self._tracer is not None:
            context = TraceContext.from_wire(trace)
            if context is not None or self._tracer.should_sample():
                trace_id = (context.trace_id if context is not None
                            else self._tracer.new_trace_id())
                parent = context.parent if context is not None else None
                self._traces[transaction.txn_id] = self._tracer.begin_span(
                    "txn", trace_id, parent=parent, category="txn",
                    args={"txn": transaction.txn_id, "label": label})
        return session

    def commit(self, transaction: Transaction, label: str = "") -> None:
        """Commit through two-phase commit over the touched shards.

        Phase one prepares the before-image log of every shard the
        transaction locked or wrote on; the global commit record (and the
        :attr:`commit_log` entry — both under the commit mutex, so their
        orders agree) then fixes the serialisation point; phase two discards
        the shards' undo logs.  The transaction is marked ``COMMITTED``
        *before* any lock is released, so a racing observer can never see an
        ACTIVE transaction whose writes are already unprotected.

        Raises:
            TwoPhaseCommitError: a shard vetoed prepare.  The transaction has
                been aborted on every touched shard (all before-images
                restored) before the error propagates.
        """
        transaction.ensure_active()
        txn = transaction.txn_id
        touched = self._touched_shards(txn)
        root = self._traces.get(txn)
        if transaction.read_only and not touched:
            # Snapshot-served: no locks, no undo state, nothing to prepare
            # and no serialisation point to claim — the transaction leaves
            # no commit_log entry (sequential replay orders writers only).
            transaction.state = TransactionState.COMMITTED
            self._origins.pop(txn, None)
            self._sessions.pop(txn, None)
            self.metrics.record_commit()
            if root is not None:
                self._traces.pop(txn, None)
                self._tracer.end_span(root)
            return
        with self._maybe_span(root, "commit", "txn",
                              {"shards": list(touched)}) as commit_span:
            if self._vectored:
                # Remaining deferred images/writes piggyback on each
                # shard's prepare message — staged locally, zero extra
                # round trips.
                self._stage_deferred(txn, touched)
            try:
                if commit_span is None:
                    self._coordinator.prepare(txn, touched)
                else:
                    self._coordinator.prepare(txn, touched,
                                              tracer=self._tracer,
                                              context=commit_span.context())
            except TwoPhaseCommitError:
                self.abort(transaction)
                raise
            with self._maybe_span(commit_span, "decision-barrier", "2pc"):
                with self._commit_mutex:
                    self._commit_log.append((txn, label or f"T{txn}"))
                    self._coordinator.record_commit(txn, touched)
                # With group commit the record above is not yet fsynced; the
                # wait happens *outside* the commit mutex so concurrent
                # committers share one barrier.  Without group commit this
                # returns immediately.
                self._coordinator.wait_commit_durable()
            transaction.state = TransactionState.COMMITTED
            with self._maybe_span(commit_span, "phase-two", "2pc") as two:
                self._coordinator.complete_commit(
                    txn, touched,
                    trace=None if two is None else two.context().to_wire())
            if self._workers is not None:
                # Remote participants dropped their own undo logs in phase
                # two; the mirror copies are dropped here.
                self._recovery.forget(txn)
            else:
                self._recovery.discard_tracking(txn)
            if self._escrow is not None:
                # The commit decision is durable: the deltas are final and
                # their WAL records may be released to the next checkpoint.
                self._escrow.forget(txn)
            with self._maybe_span(commit_span, "lock-release", "lock"):
                if self._sanitizer is not None:
                    self._sanitizer.note_release(txn)
                self._locks.release_all(txn)
        self._origins.pop(txn, None)
        self._sessions.pop(txn, None)
        self.metrics.record_commit(cross_shard=len(touched) > 1)
        if root is not None:
            self._traces.pop(txn, None)
            self._tracer.end_span(root)

    def abort(self, transaction: Transaction) -> None:
        """Abort: restore before-images on every touched shard, then unlock.

        The undo runs while the locks are still held (strict 2PL — nobody
        may see the dirty values), the transaction is marked ``ABORTED``,
        and only then are the locks released and doom flags cleared,
        mirroring the commit-side ordering.
        """
        if transaction.is_finished:
            raise TransactionError(f"{transaction} is already finished")
        txn = transaction.txn_id
        touched = self._touched_shards(txn)
        root = self._traces.get(txn)
        with self._maybe_span(root, "abort", "txn",
                              {"shards": list(touched)}) as abort_span:
            if self._vectored:
                # Unflushed deferred state never reached the workers: their
                # partitions are untouched by it, so dropping the buffers
                # is the whole worker-side undo; the engine-side undo below
                # restores the mirror (clients' staged payloads are cleared
                # by their abort calls).
                self._drop_deferred(txn)
            self._coordinator.abort(
                txn, touched,
                trace=None if abort_span is None
                else abort_span.context().to_wire())
            if self._workers is not None:
                # The workers restored their partitions; restore the mirror
                # the same way (still under this transaction's locks).
                self._recovery.undo(txn)
            else:
                self._recovery.discard_tracking(txn)
            if self._escrow is not None:
                # Inverse-apply after the image restores: a field that got
                # an ordinary write after an escrow merge had its image
                # capture the delta, so the restore re-establishes it and
                # the inverse below still nets the field back to base.
                self._escrow.undo(txn)
            transaction.state = TransactionState.ABORTED
            if self._sanitizer is not None:
                self._sanitizer.note_release(txn)
            self._locks.release_all(txn)
        self._origins.pop(txn, None)
        self._sessions.pop(txn, None)
        self.metrics.record_abort()
        if root is not None:
            self._traces.pop(txn, None)
            self._tracer.end_span(root)

    def close(self) -> None:
        """Stop the detector, checkpointer and workers; close the logs.
        Idempotent."""
        if not self._closed:
            self._closed = True
            self._detector.stop()
            if self._checkpointer is not None:
                self._checkpointer.stop()
            if self._workers is not None:
                self._teardown_workers(self._workers)
            for wal in self._wals:
                if wal is not None:
                    wal.close()
            if self._decision_log is not None:
                self._decision_log.close()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    @property
    def sanitizer(self) -> Sanitizer | None:
        """The runtime sanitizer when sanitized execution is on, else ``None``.

        Stress tests assert ``engine.sanitizer.violations == 0`` after a
        sanitized run.
        """
        return self._sanitizer

    # -- executing operations ----------------------------------------------------

    def perform(self, transaction: Transaction, operation: Operation,
                timeout: float | None | object = USE_DEFAULT_TIMEOUT) -> list[Any]:
        """Plan, lock (blocking), log before-images and execute ``operation``.

        The plan is re-derived after every batch of acquisitions until it
        stops growing, exactly like the simulator: data may change while the
        transaction is blocked, and the refreshed plan may need locks the
        stale one did not know about.

        Raises:
            DeadlockError: this transaction was chosen as a deadlock victim
                while blocked; the caller must abort it.
            LockTimeoutError: a lock request expired its timeout; the caller
                should abort (strict 2PL keeps all earlier locks).
        """
        transaction.ensure_active()
        root = self._traces.get(transaction.txn_id)
        if transaction.read_only:
            results = self._perform_snapshot(transaction, operation, root)
            if results is not None:
                return results
            # Worker mode: the snapshot machinery needs the partitions in
            # this process — fall through to the ordinary locked path.
        plan = self._plan(operation)
        transaction.stats.control_points += plan.control_points
        if self._escrow is not None and not transaction.read_only:
            results = self._maybe_escrow(transaction, operation, plan,
                                         timeout, root)
            if results is not None:
                return results
        elif (self._escrow_requested and self._workers is not None
              and isinstance(operation, MethodCall)
              and self._escrow_update_for(operation) is not None):
            self.metrics.record_escrow_fallback()
        if self._vectored:
            shard_id = self._fused_shard(plan)
            if shard_id is not None:
                results = self._perform_fused(transaction, operation, plan,
                                              shard_id, timeout, root)
                if results is not None:
                    return results
                # Fallback: the worker's replan escaped the shard.  Its
                # partial acquisitions were recorded; the classic path
                # below re-requests them (an immediate grant) and carries
                # the operation through the cross-shard machinery.
        plan = self._acquire_plan(transaction, plan, operation, timeout,
                                  root=root)
        transaction.stats.operations += 1
        projections = self._protocol.undo_projections(plan)
        for oid, fields in projections:
            self._recovery.log_before_image(transaction.txn_id, oid, fields)
        if self._sanitizer is not None:
            self._sanitizer.note_images(transaction.txn_id, projections)
            scope: Any = self._sanitizer.operation_scope(
                transaction.txn_id, plan)
        else:
            scope = contextlib.nullcontext()
        with self._maybe_span(root, f"execute:{operation.method}",
                              "exec") as span, scope:
            if self._workers is None:
                results = self._protocol.execute(operation, self._interpreter)
            else:
                results = self._execute_remote(
                    transaction.txn_id, operation, plan, projections,
                    trace=None if span is None else span.context().to_wire())
        self.metrics.record_operation()
        transaction.executed.append(operation)
        transaction.results.extend(results)
        return results

    def _acquire_plan(self, transaction: Transaction, plan: LockPlan,
                      operation: Operation,
                      timeout: float | None | object, *,
                      root: Span | None = None) -> LockPlan:
        acquired: set[tuple[Any, Any]] = set()
        for _ in range(_MAX_REPLAN_ROUNDS):
            pending = [request for request in plan.requests
                       if (request.resource, request.mode) not in acquired]
            if self._vectored and len(pending) > 1:
                # Vectored mode: the whole round goes out grouped by shard,
                # one acquire-batch RPC per worker shard instead of one
                # round trip per lock.
                self._acquire_round(transaction, pending, timeout, root,
                                    acquired)
            else:
                for request in pending:
                    transaction.stats.lock_requests += 1
                    try:
                        waited = self._acquire_one(transaction.txn_id, request,
                                                   timeout, root)
                    except LockTimeoutError as error:
                        self.metrics.record_timeout()
                        self.metrics.record_requests(1, error.waited)
                        raise
                    except DeadlockError as error:
                        self.metrics.record_requests(1, error.waited)
                        raise
                    self.metrics.record_requests(1, waited)
                    if waited > 0.0:
                        transaction.stats.waits += 1
                    acquired.add((request.resource, request.mode))
            refreshed = self._plan(operation)
            extra = tuple(r for r in refreshed.requests
                          if (r.resource, r.mode) not in acquired)
            if not extra:
                return LockPlan(requests=plan.requests,
                                control_points=plan.control_points,
                                receivers=refreshed.receivers,
                                undo_projections=refreshed.undo_projections)
            plan = LockPlan(requests=plan.requests + extra,
                            control_points=plan.control_points,
                            receivers=refreshed.receivers,
                            undo_projections=refreshed.undo_projections)
        raise TransactionError(
            f"lock plan of {operation!r} did not converge within "
            f"{_MAX_REPLAN_ROUNDS} refresh rounds")

    def _acquire_one(self, txn: int, request: Any,
                     timeout: float | None | object,
                     root: Span | None) -> float:
        """One blocking acquisition, wrapped in a ``lock`` span when traced.

        The span covers the whole blocking call — its duration *is* the
        lock's critical-path cost — and the measured wait lands in its args
        so queueing time is distinguishable from grant overhead.
        """
        if root is None:
            waited = self._locks.acquire(txn, request.resource, request.mode,
                                         timeout)
            if self._sanitizer is not None:
                self._sanitizer.note_acquire(txn, request.resource,
                                             request.mode)
            return waited
        with self._tracer.span("lock", root.trace_id, parent=root.span_id,
                               category="lock",
                               args={"resource": str(request.resource),
                                     "mode": str(request.mode)}) as span:
            waited = self._locks.acquire(txn, request.resource, request.mode,
                                         timeout,
                                         trace=span.context().to_wire())
            span.args["waited_ms"] = round(waited * 1000, 3)
            if self._sanitizer is not None:
                self._sanitizer.note_acquire(txn, request.resource,
                                             request.mode)
            return waited

    def _acquire_round(self, transaction: Transaction, requests: Sequence[Any],
                       timeout: float | None | object, root: Span | None,
                       acquired: set[tuple[Any, Any]]) -> None:
        """One vectored plan round: ship every pending request at once.

        Metrics, stats and sanitizer notes match the per-request path.  On
        a mid-batch deadlock/timeout nothing is added to ``acquired`` —
        the caller aborts, and ``release_all`` (the batch marked its shards
        touched before any RPC) frees whatever the workers granted.
        """
        txn = transaction.txn_id
        pairs = [(request.resource, request.mode) for request in requests]
        transaction.stats.lock_requests += len(pairs)
        try:
            with self._maybe_span(root, "lock-batch", "lock",
                                  {"requests": len(pairs)}) as span:
                waits = self._locks.acquire_many(
                    txn, pairs, timeout,
                    trace=None if span is None else span.context().to_wire())
                if span is not None:
                    # Same contract as the per-request ``lock`` span: the
                    # queueing time (summed over the batch) is separable
                    # from grant overhead when reading the trace.
                    span.args["waited_ms"] = round(sum(waits) * 1000, 3)
        except LockTimeoutError as error:
            self.metrics.record_timeout()
            self.metrics.record_requests(1, error.waited)
            raise
        except DeadlockError as error:
            self.metrics.record_requests(1, error.waited)
            raise
        for (resource, mode), waited in zip(pairs, waits):
            self.metrics.record_requests(1, waited)
            if waited > 0.0:
                transaction.stats.waits += 1
            if self._sanitizer is not None:
                self._sanitizer.note_acquire(txn, resource, mode)
            acquired.add((resource, mode))

    # -- the analysis's runtime payoff ---------------------------------------------

    def _plan(self, operation: Operation) -> LockPlan:
        """The operation's lock plan, memoized when it is structural."""
        plan, hit = self._plans.plan(operation)
        self.metrics.record_plan_cache(hit)
        return plan

    def _escrow_update_for(self, operation: MethodCall) -> EscrowUpdate | None:
        """The proved counter-update shape of this call, or ``None``.

        Resolved against the receiver's *proper* class — that is what the
        interpreter's late binding would execute — so a prefixed send
        (``as_class``) stays on the ordinary path.
        """
        if operation.as_class is not None:
            return None
        compiled_class = self._protocol.compiled.classes.get(
            operation.oid.class_name)
        if compiled_class is None:
            return None
        return compiled_class.escrow_update(operation.method)

    def _escrowed_plan(self, plan: LockPlan, oid: OID,
                       update: EscrowUpdate) -> LockPlan | None:
        """The plan with its write-covering requests demoted to escrow mode.

        The substitution is request-for-request on the *protocol's own*
        granules — the TAV instance lock, the relational tuple, the field
        lock — so escrow admissions conflict with ordinary work on exactly
        the resources the ordinary plan would have claimed exclusively,
        and commute only with each other (``escrow_compatible``).  A plan
        in which nothing covers the update's field (it should not exist
        for a proved update) yields ``None``: no escrow admission.
        """
        compiled = self._protocol.compiled
        schema = compiled.schema
        mode = EscrowMode(update.method, update.field)
        requests: list[LockRequestSpec] = []
        changed = False
        for request in plan.requests:
            if lock_covers(request.resource, request.mode, oid=oid,
                           class_name=oid.class_name, field=update.field,
                           is_write=True, schema=schema, compiled=compiled):
                requests.append(LockRequestSpec(resource=request.resource,
                                                mode=mode, note="escrow"))
                changed = True
            else:
                requests.append(request)
        if not changed:
            return None
        return LockPlan(requests=tuple(requests),
                        control_points=plan.control_points,
                        receivers=(), undo_projections=())

    def _maybe_escrow(self, transaction: Transaction, operation: Operation,
                      plan: LockPlan, timeout: float | None | object,
                      root: Span | None) -> list[Any] | None:
        """Admit a proved counter update under escrow locks, or ``None``.

        ``None`` means *take the ordinary path* — the fallback direction is
        always safe.  An admission acquires the substituted plan (escrow
        mode on the write-covering granules, intentions unchanged), merges
        the delta through the ledger (WAL-atomically when durable) and
        skips the interpreter entirely: the proof already reduced the
        method body to ``field += delta``.
        """
        if not isinstance(operation, MethodCall):
            return None
        update = self._escrow_update_for(operation)
        if update is None:
            return None
        oid = operation.oid
        txn = transaction.txn_id
        try:
            delta = evaluate_escrow_delta(update, tuple(operation.arguments),
                                          self._merged_builtins)
        except Exception:
            self.metrics.record_escrow_fallback()
            return None
        if any(record.oid == oid and update.field in record.values
               for record in self._recovery.log_of(txn)):
            # An ordinary write already imaged this field: abort restores
            # that image *first*, which would erase a later delta from the
            # inverse pass's baseline.  The exclusive path is safe (its new
            # image would embed any earlier deltas); the reverse order is
            # not, so it is the one we refuse.
            self.metrics.record_escrow_fallback()
            return None
        escrow_plan = self._escrowed_plan(plan, oid, update)
        if escrow_plan is None:
            self.metrics.record_escrow_fallback()
            return None
        for request in escrow_plan.requests:
            transaction.stats.lock_requests += 1
            try:
                waited = self._acquire_one(txn, request, timeout, root)
            except LockTimeoutError as error:
                self.metrics.record_timeout()
                self.metrics.record_requests(1, error.waited)
                raise
            except DeadlockError as error:
                self.metrics.record_requests(1, error.waited)
                raise
            self.metrics.record_requests(1, waited)
            if waited > 0.0:
                transaction.stats.waits += 1
        transaction.stats.operations += 1
        if self._sanitizer is not None:
            self._sanitizer.note_images(txn, ((oid, (update.field,)),))
            scope: Any = self._sanitizer.operation_scope(txn, escrow_plan)
        else:
            scope = contextlib.nullcontext()
        with self._maybe_span(root, f"escrow:{operation.method}",
                              "exec"), scope:
            self._escrow.apply(txn, oid, update.field, delta)
        self.metrics.record_operation()
        self.metrics.record_escrow_admit()
        transaction.executed.append(operation)
        results: list[Any] = [None]
        transaction.results.extend(results)
        return results

    def _perform_snapshot(self, transaction: Transaction,
                          operation: Operation,
                          root: Span | None) -> list[Any] | None:
        """Serve a read-only transaction's operation from the snapshot.

        Zero lock acquisitions, zero undo images: the operation executes
        against a committed-state copy shared by every read-only
        transaction at the same ``(commits, structural epoch)`` point.
        Returns ``None`` in worker mode (the partitions live elsewhere) —
        the caller falls through to the ordinary locked path.
        """
        if self._workers is not None:
            self.metrics.record_snapshot_fallback()
            return None
        interpreter = self._snapshot_interpreter()
        with self._maybe_span(root, f"snapshot:{operation.method}", "exec"):
            results = self._protocol.execute(operation, interpreter)
        transaction.stats.operations += 1
        self.metrics.record_operation()
        self.metrics.record_snapshot_read()
        transaction.executed.append(operation)
        transaction.results.extend(results)
        return results

    def _snapshot_interpreter(self) -> Interpreter:
        """The cached committed-state interpreter for the current point.

        Keyed by ``(len(commit_log), structural epoch)`` — a new commit or
        a create/delete invalidates; reads between commits share one copy.
        Built under the commit mutex (no commit can land mid-copy) with
        the escrow ledger frozen (no delta can apply or revert mid-copy).
        """
        with self._snapshot_mutex:
            with self._commit_mutex:
                key = (len(self._commit_log), self._structural_epoch)
                cached = self._snapshot_cache
                if cached is not None and cached[0] == key:
                    return cached[1]
                frozen = (self._escrow.frozen() if self._escrow is not None
                          else contextlib.nullcontext())
                with frozen:
                    snapshot = self._build_snapshot_store()
            interpreter = Interpreter(_ReadOnlyStoreFront(snapshot),
                                      builtins=self._builtins_arg)
            self._snapshot_cache = (key, interpreter)
            return interpreter

    def _build_snapshot_store(self) -> ObjectStore:
        """A committed-state copy: the live store minus unfinished writes.

        The fuzzy copy may contain values of transactions still in flight
        (or mid-abort); they are rolled back exactly the way an abort
        would — oldest before-image per cell first, then the inverse of
        every unresolved escrow delta — so the result is the state all
        decided transactions produced and nobody else touched.
        """
        snapshot = ObjectStore(self._store.schema)
        for oid, class_name, values in sorted(
                self._store.snapshot_instances(),
                key=lambda entry: entry[0].number):
            snapshot.restore_instance(oid, class_name, dict(values))
        restored: set[tuple[OID, str]] = set()
        for txn in sorted(self._recovery.pending_transactions()):
            if self._txn_settled(txn):
                continue
            for record in self._recovery.log_of(txn):
                for name, value in record.values.items():
                    cell = (record.oid, name)
                    if cell in restored or record.oid not in snapshot:
                        continue
                    restored.add(cell)
                    snapshot.get(record.oid).set(name, value)
        if self._escrow is not None:
            for txn, entries in self._escrow.all_entries().items():
                if self._txn_settled(txn):
                    continue
                for _shard, oid, field, delta in entries:
                    if oid not in snapshot:
                        continue
                    instance = snapshot.get(oid)
                    instance.set(field, instance.get(field) - delta)
        return snapshot

    def _txn_settled(self, txn: int) -> bool:
        """Whether ``txn``'s writes are decided-committed (keep them) rather
        than in flight or aborting (roll them back).  A committed-but-not-
        yet-forgotten transaction reports ``COMMITTED``; everything else —
        active, blocked, mid-abort, or already gone — rolls back, which for
        a gone transaction is vacuous (its records were discarded)."""
        session = self._sessions.get(txn)
        return (session is not None
                and session.transaction.state is TransactionState.COMMITTED)

    # -- worker-mode execution -----------------------------------------------------

    def _fused_shard(self, plan: LockPlan) -> int | None:
        """The single shard the plan routes to entirely, or ``None``.

        Both the lock resources and the receiver instances must live on one
        shard for the fused path — the worker acquires the locks itself, so
        an off-shard resource would be unservable there.
        """
        shards: set[int] = set()
        for request in plan.requests:
            shards.add(self._router.shard_of_resource(request.resource))
            if len(shards) > 1:
                return None
        for oid, _method in plan.receivers:
            shards.add(self._router.shard_of_oid(oid))
            if len(shards) > 1:
                return None
        return next(iter(shards)) if shards else None

    def _perform_fused(self, transaction: Transaction, operation: Operation,
                       plan: LockPlan, shard_id: int,
                       timeout: float | None | object,
                       root: Span | None) -> list[Any] | None:
        """Ship plan+locks+execution to the owning worker in one trip.

        Returns the results, or ``None`` when the worker answered the
        fallback reply (its replan escaped the shard) — either way the
        locks the worker granted are recorded here first, so abort and
        the classic path both see them.
        """
        txn = transaction.txn_id
        client = self._workers[shard_id]
        # Touched before the RPC: a deadlock/timeout raised mid-fused still
        # has this shard's partial grants released by the abort.
        self._locks.note_touched(txn, shard_id)
        images, writes = self._take_deferred(txn, shard_id)
        call = request_for_operation(txn, operation)
        try:
            with self._maybe_span(root, f"execute-fused:{operation.method}",
                                  "exec") as span:
                outcome = client.execute_fused(
                    txn, call, images, writes, timeout,
                    expected_locks=len(plan.requests),
                    trace=None if span is None else span.context().to_wire())
        except LockTimeoutError as error:
            self.metrics.record_timeout()
            self.metrics.record_requests(1, error.waited)
            raise
        except DeadlockError as error:
            self.metrics.record_requests(1, error.waited)
            raise
        for resource, mode, waited in outcome.resources:
            transaction.stats.lock_requests += 1
            self.metrics.record_requests(1, waited)
            if waited > 0.0:
                transaction.stats.waits += 1
            if self._sanitizer is not None:
                self._sanitizer.note_acquire(txn, resource, mode)
        if outcome.fallback:
            return None
        # Mirror bookkeeping in write-ahead order: log the worker-computed
        # before-images into the mirror undo log, then echo the writes.
        for oid, fields in outcome.images:
            self._recovery.log_before_image(txn, oid, fields)
        if self._sanitizer is not None:
            self._sanitizer.note_images(txn, outcome.images)
        self._mirror_writes(outcome.writes)
        transaction.stats.operations += 1
        self.metrics.record_operation()
        transaction.executed.append(operation)
        transaction.results.extend(outcome.results)
        return outcome.results

    def _buffer_images(self, txn: int, shard_id: int,
                       images: Sequence[tuple[OID, tuple[str, ...]]]) -> None:
        self._deferred_images.setdefault(txn, {}).setdefault(
            shard_id, []).extend(images)

    def _take_deferred(self, txn: int,
                       shard_id: int) -> tuple[list, list]:
        """Pop this transaction's buffered images and writes for one shard."""
        images = self._deferred_images.get(txn, {}).pop(shard_id, [])
        writes = ([] if self._remote_front is None
                  else self._remote_front.take_writes(txn, shard_id))
        return images, writes

    def _stage_deferred(self, txn: int, touched: Sequence[int]) -> None:
        """Stage remaining deferred state onto each shard's next prepare."""
        for shard_id in touched:
            images, writes = self._take_deferred(txn, shard_id)
            if images or writes:
                self._workers[shard_id].stage_prepare(txn, images, writes)
        # Buffered state always sits on touched shards (every write is
        # lock-covered); drop the empty bookkeeping either way.
        self._drop_deferred(txn)

    def _drop_deferred(self, txn: int) -> None:
        self._deferred_images.pop(txn, None)
        if self._remote_front is not None:
            self._remote_front.drop(txn)

    def _execute_remote(self, txn: int, operation: Operation, plan: LockPlan,
                        projections: Sequence[tuple[OID, tuple[str, ...]]],
                        trace: object = None) -> list[Any]:
        """Execute ``operation`` against the shard workers.

        Two paths, chosen by where the plan's receivers live:

        * **single-shard** (the common case under OID-hash routing — one
          instance, its self-directed sends, its same-shard references):
          the whole operation ships to the owning worker in one round trip;
          the worker logs the before-images, runs the method bodies on its
          own partition, and returns the results plus the writes it
          applied, which are echoed into the mirror store;
        * **cross-shard** (extents, domains, references crossing shards):
          the write plan is sent to every touched worker first (the
          write-ahead rule per worker), then the method bodies run *here*
          against a store front that reads and writes fields through the
          owning workers, echoing writes into the mirror.

        The mirror invariant both paths maintain: for any field a
        transaction holds a lock on, the mirror value equals the worker
        value — writers echo synchronously before their locks are released,
        so plans (which re-derive under held locks) never see stale data.
        """
        assert self._workers is not None
        by_shard: dict[int, list[tuple[OID, tuple[str, ...]]]] = {}
        for oid, fields in projections:
            if fields:
                shard_id = self._router.shard_of_oid(oid)
                by_shard.setdefault(shard_id, []).append((oid, fields))
        if self._vectored:
            # Deferred-write mode — every operation the fused path did not
            # already run on its worker executes here with *zero* data-plane
            # RPCs: the images ride the shards' prepares, reads come from
            # the mirror (the mirror invariant guarantees parity under the
            # held locks) and writes buffer per shard until the next fused
            # execute on that shard flushes them or its prepare piggybacks
            # them.
            assert self._remote_interpreter is not None
            assert self._remote_front is not None
            for shard_id, images in by_shard.items():
                self._buffer_images(txn, shard_id, images)
            with self._remote_front.transaction(txn):
                return self._protocol.execute(operation,
                                              self._remote_interpreter)
        receiver_shards = {self._router.shard_of_oid(oid)
                           for oid, _method in plan.receivers}
        if len(receiver_shards) == 1:
            (shard_id,) = receiver_shards
            call = request_for_operation(txn, operation)
            images = by_shard.get(shard_id, [])
            results, writes = self._workers[shard_id].execute(
                txn, call, images, trace=trace)
            self._mirror_writes(writes)
            return results
        assert self._remote_interpreter is not None
        for shard_id, images in by_shard.items():
            self._workers[shard_id].write_plan(txn, images, trace=trace)
        return self._protocol.execute(operation, self._remote_interpreter)

    def _mirror_writes(self, writes: Sequence[tuple[OID, Mapping[str, Any]]]) -> None:
        for oid, values in writes:
            instance = self._store.get(oid)
            for name, value in values.items():
                instance.set(name, value)

    # -- retrying wrappers --------------------------------------------------------

    def run_transaction(self, work: Callable[[Session], T], *,
                        label: str = "",
                        max_retries: int | None = None) -> T:
        """Run ``work(session)`` transactionally with automatic retry.

        The session is committed when ``work`` returns without having
        finished it explicitly.  On :class:`DeadlockError` or
        :class:`LockTimeoutError` the transaction is aborted and retried
        after a capped exponential backoff with jitter; any other exception
        aborts and propagates.

        A retry begins a fresh transaction (a new identifier — its locks and
        undo state must not be confused with the aborted incarnation's) but
        *carries the original begin timestamp* (``origin``), and victim
        selection ranks transactions by that origin.  An aborted-and-retried
        transaction therefore keeps its seniority instead of re-entering as
        the youngest — the wait-die-style fix for retry starvation, where a
        long transaction under contention was re-victimised forever.
        """
        retries = self._max_retries if max_retries is None else max_retries
        attempt = 0
        origin: int | None = None
        while True:
            session = self.begin(label=label, origin=origin)
            origin = session.transaction.origin
            session.transaction.stats.restarts = attempt
            try:
                result = work(session)
                if session.transaction.is_active:
                    session.commit()
                return result
            except (DeadlockError, LockTimeoutError):
                self._abort_quietly(session)
                attempt += 1
                if attempt > retries:
                    raise
                # begin() counts the retry when the next incarnation passes
                # its origin — the same accounting remote retry loops get.
                time.sleep(self._backoff(attempt))
            except BaseException:
                self._abort_quietly(session)
                raise

    def run_spec(self, spec: TransactionSpec, *,
                 max_retries: int | None = None) -> list[Any]:
        """Replay one workload :class:`TransactionSpec` with retry."""

        def replay(session: Session) -> list[Any]:
            results: list[Any] = []
            for operation in spec.operations:
                results.append(session.perform(operation))
            return results

        return self.run_transaction(replay, label=spec.label,
                                    max_retries=max_retries)

    def _abort_quietly(self, session: Session) -> None:
        if not session.transaction.is_finished:
            self.abort(session.transaction)

    def _backoff(self, attempt: int) -> float:
        delay = min(self._backoff_cap, self._backoff_base * (2 ** (attempt - 1)))
        with self._rng_mutex:
            jitter = self._backoff_rng.uniform(0.5, 1.0)
        return delay * jitter

    # -- durability ---------------------------------------------------------------

    def checkpoint(self) -> list[ShardCheckpoint]:
        """Take a fuzzy checkpoint of every shard now (durability must be on).

        In worker mode every worker checkpoints its own partition; the
        decision log is then compacted with the usual snapshot-decided-first
        ordering (a transaction deciding concurrently is not in the snapshot
        and survives).

        Raises:
            TransactionError: the engine runs without durability.
        """
        if self._workers is not None and self._durability.enabled:
            decided: set[int] = set()
            if self._decision_log is not None:
                decided = {record.txn
                           for record in self._decision_log.decisions()}
            mentioned: set[int] = set()
            results: list[ShardCheckpoint] = []
            for client in self._workers:
                kept = [int(txn) for txn in
                        client.checkpoint().get("kept", ())]
                mentioned.update(kept)
                results.append(ShardCheckpoint(
                    shard_id=client.shard_id, instances=-1,
                    active=tuple(sorted(kept)), records_kept=len(kept),
                    records_dropped=-1))
            if self._decision_log is not None and decided - mentioned:
                self._decision_log.compact(decided - mentioned)
            return results
        if self._checkpointer is None:
            raise TransactionError("the engine runs with durability off; "
                                   "there is nothing to checkpoint")
        return self._checkpointer.checkpoint()

    def create_instance(self, class_name: str, **field_values: Any) -> Any:
        """Create an instance mid-epoch, structurally durable when logging is on.

        The store creation is followed by an
        :class:`~repro.wal.records.InstanceCreated` record in the owning
        shard's WAL (barriered under ``fsync``), so recovery rebuilds the
        instance even when no checkpoint ever saw it — plain ``store.create``
        used to be durable only through the next checkpoint.

        Raises:
            TransactionError: in worker mode — the partitions live in other
                processes and the workers do not serve structural changes.
        """
        if self._workers is not None:
            raise TransactionError("shard workers do not serve mid-epoch "
                                   "instance creation yet")
        instance = self._store.create(class_name, **field_values)
        wal = self._wals[self._router.shard_of_oid(instance.oid)]
        if wal is not None:
            wal.append(InstanceCreated(oid=instance.oid,
                                       class_name=instance.class_name,
                                       values=dict(instance.values)))
            wal.barrier()
        self._note_structural_change()
        return instance

    def delete_instance(self, oid: OID) -> None:
        """Delete an instance mid-epoch, structurally durable when logging is on.

        The :class:`~repro.wal.records.InstanceDeleted` record is appended
        (and barriered under ``fsync``) *before* the store mutation, so a
        crash between the two replays the delete instead of resurrecting
        the instance.

        Raises:
            TransactionError: in worker mode (see :meth:`create_instance`).
        """
        if self._workers is not None:
            raise TransactionError("shard workers do not serve mid-epoch "
                                   "instance deletion yet")
        self._store.get(oid)  # raise before logging for an unknown OID
        wal = self._wals[self._router.shard_of_oid(oid)]
        if wal is not None:
            wal.append(InstanceDeleted(oid=oid))
            wal.barrier()
        self._store.delete(oid)
        self._note_structural_change()

    def _note_structural_change(self) -> None:
        """Population changed: extent/domain plans and snapshots are stale."""
        self._plans.invalidate()
        with self._snapshot_mutex:
            self._structural_epoch += 1
            self._snapshot_cache = None

    @property
    def durability(self) -> Durability:
        """The durability configuration this engine runs under."""
        return self._durability

    @property
    def checkpointer(self) -> CheckpointManager | None:
        """The checkpoint manager, when durability is on."""
        return self._checkpointer

    @property
    def wals(self) -> tuple[WriteAheadLog | None, ...]:
        """The per-shard write-ahead logs (``None`` entries when off)."""
        return self._wals

    @property
    def wal_bytes_written(self) -> int:
        """Total bytes appended to every shard WAL plus the decision log.

        In worker mode the shard WALs live in the worker processes, so
        their byte counts are fetched over RPC (a dead worker contributes
        nothing — its count died with it).
        """
        total = sum(wal.bytes_written for wal in self._wals if wal is not None)
        if self._workers is not None:
            for client in self._workers:
                try:
                    total += int(client.hello().get("wal_bytes", 0))
                except ParticipantUnavailable:
                    continue
        if self._decision_log is not None:
            total += self._decision_log.bytes_written
        return total

    # -- observability ------------------------------------------------------------

    def _maybe_span(self, parent: Span | None, name: str, category: str,
                    args: dict[str, Any] | None = None) -> Any:
        """A tracer span parented to ``parent``, or a null context.

        The single ``parent is None`` check is the whole cost of tracing
        when it is off (or the transaction was not sampled) — every
        instrumented stage goes through here.
        """
        if parent is None:
            return contextlib.nullcontext(None)
        return self._tracer.span(name, parent.trace_id,
                                 parent=parent.span_id, category=category,
                                 args=args)

    @property
    def tracer(self) -> Tracer | None:
        """The engine's span recorder, when tracing is enabled."""
        return self._tracer

    def trace_context_for(self, txn: int) -> TraceContext | None:
        """The root-span context of ``txn``, when that transaction is traced.

        The API dispatcher uses this to parent its per-command spans to the
        transaction the command operates on.
        """
        root = self._traces.get(txn)
        return None if root is None else root.context()

    def collect_trace(self) -> list[Span]:
        """Every span recorded so far: the engine's own plus, in worker
        mode, each reachable worker's (drained — they ship once)."""
        spans: list[Span] = []
        if self._tracer is not None:
            spans.extend(self._tracer.spans)
        if self._workers is not None:
            for client in self._workers:
                spans.extend(Span.from_wire(document)
                             for document in client.drain_spans())
        return spans

    def export_trace(self, path: Any,
                     extra_spans: Sequence[Span] = ()) -> int:
        """Write the collected spans as Chrome-trace JSON; returns the event
        count.  ``extra_spans`` lets a caller (the socket server, a client
        harness) add spans recorded outside this engine."""
        spans = self.collect_trace()
        spans.extend(extra_spans)
        return write_chrome_trace(path, spans)

    def cluster_metrics(self) -> dict[str, Any]:
        """One cluster-wide metrics snapshot.

        In-process this is :meth:`EngineMetrics.snapshot`; in worker mode
        the workers' WAL byte counts and barrier histograms are merged in —
        fsync time paid in a worker process is commit-path cost exactly
        like fsync time paid here.  Worker *lock-wait* histograms are NOT
        merged: the engine already recorded every wait via the acquire
        replies (``reply.waited``), so merging would double-count; the
        per-shard view stays available through :meth:`stats`.  An
        unreachable worker contributes nothing.
        """
        snapshot = self.metrics.snapshot()
        if self._workers is None:
            return snapshot
        merged = {name: LatencyHistogram.from_snapshot(document)
                  for name, document in snapshot["histograms"].items()}
        for client in self._workers:
            try:
                payload = client.metrics_snapshot()
            except ParticipantUnavailable:
                continue
            snapshot["wal_bytes"] += int(payload.get("wal_bytes", 0))
            worker_histograms = payload.get("metrics", {}).get("histograms", {})
            barrier = worker_histograms.get("barrier")
            if barrier:
                merged["barrier"].merge(
                    LatencyHistogram.from_snapshot(barrier))
        snapshot["histograms"] = {name: histogram.snapshot()
                                  for name, histogram in merged.items()}
        return snapshot

    def stats(self, top: int = 8) -> dict[str, Any]:
        """The per-shard breakdown behind the flat metrics snapshot.

        Per shard: deadlock victims doomed there, WAL bytes, and the
        hottest resources by accumulated lock-wait time; plus the merged
        cluster-wide hot list (top ``top``) and the coordinator's
        tolerated-unavailable count.  In worker mode the numbers come from
        each worker's ``metrics`` RPC (an unreachable worker is reported,
        not guessed at).
        """
        victim_counts = self._locks.victim_counts()
        per_shard: list[dict[str, Any]] = []
        hot: list[tuple[str, int, float]] = []
        if self._workers is None:
            for shard_id, manager in enumerate(self._locks.shards):
                wal = self._wals[shard_id]
                resources = [(str(resource), waits, wait_time)
                             for resource, waits, wait_time
                             in manager.hot_resources(top)]
                hot.extend(resources)
                per_shard.append({
                    "shard": shard_id,
                    "deadlock_victims": victim_counts[shard_id],
                    "wal_bytes": 0 if wal is None else wal.bytes_written,
                    "hot_resources": [
                        {"resource": name, "waits": waits,
                         "wait_time": round(wait_time, 6)}
                        for name, waits, wait_time in resources],
                })
        else:
            for shard_id, client in enumerate(self._workers):
                try:
                    payload = client.metrics_snapshot()
                except ParticipantUnavailable:
                    per_shard.append({"shard": shard_id, "unreachable": True})
                    continue
                resources = [(str(name), int(waits), float(wait_time))
                             for name, waits, wait_time
                             in payload.get("hot_resources", ())]
                hot.extend(resources)
                entry = {
                    "shard": shard_id,
                    "deadlock_victims": int(payload.get(
                        "deadlock_victims", victim_counts[shard_id])),
                    "wal_bytes": int(payload.get("wal_bytes", 0)),
                    "hot_resources": [
                        {"resource": name, "waits": waits,
                         "wait_time": round(wait_time, 6)}
                        for name, waits, wait_time in resources],
                    "metrics": payload.get("metrics", {}),
                }
                if payload.get("role") is not None:
                    entry["role"] = payload["role"]
                # The primary's shipper view: per-standby lag (LSNs and
                # seconds), stream health, frames shipped.
                if payload.get("replication") is not None:
                    entry["replication"] = payload["replication"]
                per_shard.append(entry)
        standby_health: list[dict[str, Any]] = []
        for shard_id, standbys in enumerate(self._standbys):
            for client in standbys:
                try:
                    payload = client.metrics_snapshot()
                except ParticipantUnavailable:
                    standby_health.append({"shard": shard_id,
                                           "unreachable": True})
                    continue
                standby_health.append({
                    "shard": shard_id,
                    "standby": payload.get("standby"),
                })
        hot.sort(key=lambda entry: entry[2], reverse=True)
        return {
            "shards": per_shard,
            "replicas": self._replicas,
            "failovers": self._failovers,
            "standbys": standby_health,
            "hot_resources": [
                {"resource": name, "waits": waits,
                 "wait_time": round(wait_time, 6)}
                for name, waits, wait_time in hot[:max(0, top)]],
            "deadlock_victims": {
                str(shard_id): count
                for shard_id, count in enumerate(victim_counts)},
            "unavailable_completions":
                self._coordinator.unavailable_completions,
            "plan_cache": self._plans.stats.as_dict(),
            "escrow": {
                "enabled": self._escrow is not None,
                "requested": self._escrow_requested,
                "applied": 0 if self._escrow is None else self._escrow.applied,
            },
        }

    # -- the command layer --------------------------------------------------------

    def store_state(self) -> dict[str, dict[str, Any]]:
        """Every live instance's fields, keyed by OID string.

        The ground truth for verification and the ``StoreState`` control
        plane: in-process it is a walk of the store; in worker mode it is
        the merge of every worker's *own partition* — the mirror store is a
        planning replica, not the authority.
        """
        if self._workers is not None:
            merged: dict[str, dict[str, Any]] = {}
            for client in self._workers:
                merged.update(client.snapshot())
            return merged
        return {str(instance.oid): dict(instance.values)
                for instance in self._store}

    @property
    def shard_clients(self) -> tuple[RemoteShardClient, ...] | None:
        """The per-shard RPC clients in worker mode (``None`` otherwise)."""
        return self._workers

    @property
    def standby_clients(self) -> tuple[tuple[RemoteShardClient, ...], ...]:
        """Per-shard standby RPC clients (empty without replicas).

        A promoted standby leaves this list — after a failover its client
        is retargeted into :attr:`shard_clients` instead.
        """
        return tuple(tuple(standbys) for standbys in self._standbys)

    @property
    def replicas(self) -> int:
        """Standby workers per shard this engine was built with."""
        return self._replicas

    @property
    def failovers(self) -> int:
        """How many standby promotions this engine has performed."""
        return self._failovers

    def session_for(self, txn_id: int) -> Session | None:
        """The live session driving ``txn_id``, or ``None`` once finished.

        This is how the API dispatcher resolves the transaction handles its
        commands carry — clients reference transactions by identifier, never
        by object.
        """
        return self._sessions.get(txn_id)

    @property
    def api(self) -> Any:
        """The engine's canonical in-process API connection.

        :class:`~repro.engine.session.Session` routes every operation
        through it, so in-process callers and socket clients exercise the
        same command layer.  Created lazily (and without admission control —
        the engine never refuses its own sessions; servers put an
        :class:`~repro.api.admission.AdmissionController` in front of their
        *own* dispatcher).
        """
        if self._api is None:
            from repro.api.connection import InProcessConnection

            self._api = InProcessConnection(self)
        return self._api

    # -- introspection ------------------------------------------------------------

    @property
    def protocol(self) -> ConcurrencyControlProtocol:
        """The concurrency-control protocol in use."""
        return self._protocol

    @property
    def lock_manager(self) -> ShardedLockFront:
        """The sharded blocking lock front (tests, detector)."""
        return self._locks

    @property
    def recovery(self) -> ShardedRecoveryManager:
        """The sharded recovery manager (per-shard undo logs)."""
        return self._recovery

    @property
    def coordinator(self) -> TwoPhaseCommitCoordinator:
        """The two-phase commit coordinator (decision log, participants)."""
        return self._coordinator

    @property
    def router(self) -> ShardRouter:
        """The shard router shared by locks, undo logs and a sharded store."""
        return self._router

    @property
    def num_shards(self) -> int:
        """How many shards the engine partitions over."""
        return self._router.num_shards

    @property
    def interpreter(self) -> Interpreter:
        """The interpreter executing method bodies."""
        return self._interpreter

    @property
    def plan_cache(self) -> PlanCache:
        """The memoized lock-plan cache the hot path plans through."""
        return self._plans

    @property
    def escrow_ledger(self) -> EscrowLedger | None:
        """The escrow ledger when escrow admission is on (in-process only)."""
        return self._escrow

    @property
    def detector(self) -> DeadlockDetector:
        """The background deadlock detector."""
        return self._detector

    @property
    def commit_log(self) -> tuple[tuple[int, str], ...]:
        """``(txn_id, label)`` pairs in commit order (a serialisation order)."""
        with self._commit_mutex:
            return tuple(self._commit_log)

    def _ensure_open(self) -> None:
        if self._closed:
            raise TransactionError("the engine has been closed")


class _ReadOnlyStoreFront:
    """The store a snapshot-served read-only transaction executes against.

    Wraps the engine's committed-state copy: reads pass through, writes
    are refused — ``read_only`` is a promise the engine enforces here
    rather than trusts.  The copy is shared by every read-only transaction
    at the same snapshot point, so a successful write would corrupt them
    all; refusing is both the API contract and the cache's integrity.
    """

    def __init__(self, store: ObjectStore) -> None:
        self._store = store

    @property
    def schema(self) -> Any:
        return self._store.schema

    def __contains__(self, oid: OID) -> bool:
        return oid in self._store

    def get(self, oid: OID) -> Any:
        return self._store.get(oid)

    def read_field(self, oid: OID, field_name: str) -> Any:
        return self._store.read_field(oid, field_name)

    def write_field(self, oid: OID, field_name: str, value: Any) -> None:
        raise TransactionError(
            f"read-only transaction attempted to write {oid}.{field_name}; "
            f"begin the transaction without read_only to update")

    def __getattr__(self, name: str) -> Any:
        return getattr(self._store, name)


class _WorkerStoreFront:
    """The store the cross-shard remote interpreter executes against.

    Identity questions (does the OID exist, what is its class) are answered
    from the mirror — membership is fixed after population in worker mode.
    Field access depends on the mode:

    * **eager** (``deferred=False``, the classic wire behaviour): reads and
      writes go to the owning worker, one RPC per field, with writes echoed
      into the mirror so planning keeps seeing current values;
    * **deferred** (the vectored-RPC engine): reads come from the mirror —
      sound because every field the interpreter touches is lock-covered,
      and the mirror invariant (mirror value == worker value for any locked
      field) holds from the startup snapshot check onward — and writes go
      to the mirror plus a per-transaction per-shard buffer the engine
      flushes with the next Execute to that shard or piggybacks on its
      prepare.  A cross-shard execution then costs zero data-plane RPCs.

    Implements exactly the surface
    :class:`~repro.objects.interpreter.Interpreter` touches.
    """

    def __init__(self, mirror: Any, router: ShardRouter,
                 workers: "Sequence[RemoteShardClient]", *,
                 deferred: bool = False) -> None:
        self._mirror = mirror
        self._router = router
        self._workers = tuple(workers)
        self._deferred = deferred
        #: The transaction whose cross-shard execution this thread is
        #: driving (sessions are single-threaded, so thread-local is the
        #: right confinement for the write attribution).
        self._local = threading.local()
        #: txn -> shard -> [(oid, field, value)] buffered writes.  Mutated
        #: only by the owning transaction's session thread.
        self._buffers: dict[int, dict[int, list[tuple[OID, str, Any]]]] = {}

    @contextlib.contextmanager
    def transaction(self, txn: int):
        """Attribute this thread's writes to ``txn`` for the scope."""
        self._local.txn = txn
        try:
            yield
        finally:
            self._local.txn = None

    @property
    def schema(self) -> Any:
        return self._mirror.schema

    def get(self, oid: OID) -> Any:
        return self._mirror.get(oid)

    def __contains__(self, oid: OID) -> bool:
        return oid in self._mirror

    def read_field(self, oid: OID, field_name: str) -> Any:
        if self._deferred:
            return self._mirror.read_field(oid, field_name)
        return self._workers[self._router.shard_of_oid(oid)].read_field(
            oid, field_name)

    def write_field(self, oid: OID, field_name: str, value: Any) -> None:
        if self._deferred:
            txn = getattr(self._local, "txn", None)
            if txn is None:
                raise TransactionError(
                    "deferred write outside a transaction scope — "
                    "cross-shard execution must run under "
                    "_WorkerStoreFront.transaction()")
            shard_id = self._router.shard_of_oid(oid)
            self._buffers.setdefault(txn, {}).setdefault(
                shard_id, []).append((oid, field_name, value))
            self._mirror.write_field(oid, field_name, value)
            return
        self._workers[self._router.shard_of_oid(oid)].write_field(
            oid, field_name, value)
        self._mirror.write_field(oid, field_name, value)

    def take_writes(self, txn: int, shard_id: int) -> list[tuple[OID, str, Any]]:
        """Pop the buffered writes of ``txn`` destined for ``shard_id``."""
        per_shard = self._buffers.get(txn)
        if not per_shard:
            return []
        return per_shard.pop(shard_id, [])

    def drop(self, txn: int) -> None:
        """Forget every buffered write of ``txn`` (abort, or post-stage)."""
        self._buffers.pop(txn, None)
