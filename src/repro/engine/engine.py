"""The multi-threaded execution engine.

:class:`Engine` is the real-traffic counterpart of
:class:`~repro.txn.manager.TransactionManager`: the same protocol planning,
interpreter execution and undo-log recovery, but driven by OS threads with
*blocking* lock acquisition (:class:`~repro.engine.locks.BlockingLockManager`)
and a background deadlock detector
(:class:`~repro.engine.detector.DeadlockDetector`) instead of the
fail-fast :class:`~repro.errors.LockConflictError` behaviour.

Concurrency contract:

* one :class:`Engine` serves any number of threads;
* one :class:`~repro.engine.session.Session` (and its transaction) must be
  driven by a single thread at a time;
* strict two-phase locking — locks accumulate per transaction and are
  released only by commit or abort, so the commit order is a serialisation
  order and the engine records it (:attr:`commit_log`) for the harness's
  sequential-replay serializability check.

The engine owns a detector thread, so it should be closed when done; it is a
context manager (``with Engine(protocol) as engine: ...``).
"""

from __future__ import annotations

import itertools
import random
import threading
import time
from typing import Any, Callable, Mapping, TypeVar

from repro.engine.detector import DeadlockDetector
from repro.engine.locks import USE_DEFAULT_TIMEOUT, BlockingLockManager
from repro.engine.metrics import EngineMetrics
from repro.engine.session import Session
from repro.errors import DeadlockError, LockTimeoutError, TransactionError
from repro.objects.interpreter import Interpreter
from repro.sim.workload import TransactionSpec
from repro.txn.operations import Operation
from repro.txn.protocols.base import ConcurrencyControlProtocol, LockPlan
from repro.txn.recovery import RecoveryManager
from repro.txn.transaction import Transaction, TransactionState

T = TypeVar("T")

#: Bound on plan-refresh rounds after all locks of the current plan are held.
#: Each round only ever *adds* requests, and plans are derived from a finite
#: store, so two rounds normally reach the fixpoint; the bound guards against
#: a pathological workload growing the store faster than it can be planned.
_MAX_REPLAN_ROUNDS = 16


class Engine:
    """Runs transactions from many threads under strict 2PL with blocking locks."""

    def __init__(self, protocol: ConcurrencyControlProtocol, *,
                 builtins: Mapping[str, Callable[..., Any]] | None = None,
                 detection_interval: float = 0.02,
                 default_lock_timeout: float | None = None,
                 max_retries: int = 20,
                 backoff_base: float = 0.001,
                 backoff_cap: float = 0.05) -> None:
        self._protocol = protocol
        self._store = protocol.store
        self._locks = BlockingLockManager(protocol.create_lock_manager(),
                                          default_timeout=default_lock_timeout)
        self._recovery = RecoveryManager(self._store)
        self._interpreter = Interpreter(self._store, builtins=builtins)
        self._ids = itertools.count(1)
        self._max_retries = max_retries
        self._backoff_base = backoff_base
        self._backoff_cap = backoff_cap
        self._backoff_rng = random.Random(0x5eed)
        self._rng_mutex = threading.Lock()
        self._commit_mutex = threading.Lock()
        self._commit_log: list[tuple[int, str]] = []
        self.metrics = EngineMetrics()
        self._detector = DeadlockDetector(
            self._locks, interval=detection_interval,
            on_deadlock=lambda victims: self.metrics.record_deadlocks(len(victims)))
        self._locks.on_block = self._detector.nudge
        self._closed = False
        self._detector.start()

    # -- life cycle -------------------------------------------------------------

    def begin(self, label: str = "") -> Session:
        """Start a transaction and return the session handle driving it."""
        self._ensure_open()
        transaction = Transaction(txn_id=next(self._ids))
        self.metrics.record_begin()
        return Session(self, transaction, label=label)

    def commit(self, transaction: Transaction, label: str = "") -> None:
        """Commit: record the serialisation point, then release every lock.

        The commit is appended to :attr:`commit_log` *before* the locks are
        released — under strict 2PL no other transaction can observe this
        transaction's writes until the release, so the log order is a valid
        serialisation order of the committed transactions.
        """
        transaction.ensure_active()
        with self._commit_mutex:
            self._commit_log.append((transaction.txn_id,
                                     label or f"T{transaction.txn_id}"))
            self._recovery.forget(transaction.txn_id)
        self._locks.release_all(transaction.txn_id)
        transaction.state = TransactionState.COMMITTED
        self.metrics.record_commit()

    def abort(self, transaction: Transaction) -> None:
        """Abort: undo from the before-images, release locks, clear doom."""
        if transaction.is_finished:
            raise TransactionError(f"{transaction} is already finished")
        self._recovery.undo(transaction.txn_id)
        self._locks.release_all(transaction.txn_id)
        transaction.state = TransactionState.ABORTED
        self.metrics.record_abort()

    def close(self) -> None:
        """Stop the deadlock detector.  Idempotent."""
        if not self._closed:
            self._closed = True
            self._detector.stop()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- executing operations ----------------------------------------------------

    def perform(self, transaction: Transaction, operation: Operation,
                timeout: float | None | object = USE_DEFAULT_TIMEOUT) -> list[Any]:
        """Plan, lock (blocking), log before-images and execute ``operation``.

        The plan is re-derived after every batch of acquisitions until it
        stops growing, exactly like the simulator: data may change while the
        transaction is blocked, and the refreshed plan may need locks the
        stale one did not know about.

        Raises:
            DeadlockError: this transaction was chosen as a deadlock victim
                while blocked; the caller must abort it.
            LockTimeoutError: a lock request expired its timeout; the caller
                should abort (strict 2PL keeps all earlier locks).
        """
        transaction.ensure_active()
        plan = self._protocol.plan(operation)
        transaction.stats.control_points += plan.control_points
        plan = self._acquire_plan(transaction, plan, operation, timeout)
        transaction.stats.operations += 1
        for oid, fields in self._protocol.undo_projections(plan):
            self._recovery.log_before_image(transaction.txn_id, oid, fields)
        results = self._protocol.execute(operation, self._interpreter)
        self.metrics.record_operation()
        transaction.executed.append(operation)
        transaction.results.extend(results)
        return results

    def _acquire_plan(self, transaction: Transaction, plan: LockPlan,
                      operation: Operation,
                      timeout: float | None | object) -> LockPlan:
        acquired: set[tuple[Any, Any]] = set()
        for _ in range(_MAX_REPLAN_ROUNDS):
            for request in plan.requests:
                key = (request.resource, request.mode)
                if key in acquired:
                    continue
                transaction.stats.lock_requests += 1
                try:
                    waited = self._locks.acquire(transaction.txn_id,
                                                 request.resource, request.mode,
                                                 timeout)
                except LockTimeoutError as error:
                    self.metrics.record_timeout()
                    self.metrics.record_requests(1, error.waited)
                    raise
                except DeadlockError as error:
                    self.metrics.record_requests(1, error.waited)
                    raise
                self.metrics.record_requests(1, waited)
                if waited > 0.0:
                    transaction.stats.waits += 1
                acquired.add(key)
            refreshed = self._protocol.plan(operation)
            extra = tuple(r for r in refreshed.requests
                          if (r.resource, r.mode) not in acquired)
            if not extra:
                return LockPlan(requests=plan.requests,
                                control_points=plan.control_points,
                                receivers=refreshed.receivers,
                                undo_projections=refreshed.undo_projections)
            plan = LockPlan(requests=plan.requests + extra,
                            control_points=plan.control_points,
                            receivers=refreshed.receivers,
                            undo_projections=refreshed.undo_projections)
        raise TransactionError(
            f"lock plan of {operation!r} did not converge within "
            f"{_MAX_REPLAN_ROUNDS} refresh rounds")

    # -- retrying wrappers --------------------------------------------------------

    def run_transaction(self, work: Callable[[Session], T], *,
                        label: str = "",
                        max_retries: int | None = None) -> T:
        """Run ``work(session)`` transactionally with automatic retry.

        The session is committed when ``work`` returns without having
        finished it explicitly.  On :class:`DeadlockError` or
        :class:`LockTimeoutError` the transaction is aborted and retried
        after a capped exponential backoff with jitter; any other exception
        aborts and propagates.

        Unlike the simulator's restarts, a retry begins a *fresh* transaction
        (a new, younger identifier), so a retried victim can be victimised
        again; the randomised backoff is what breaks such repeat collisions,
        mirroring how real lock managers pair youngest-victim selection with
        restart delays.
        """
        retries = self._max_retries if max_retries is None else max_retries
        attempt = 0
        while True:
            session = self.begin(label=label)
            try:
                result = work(session)
                if session.transaction.is_active:
                    session.commit()
                return result
            except (DeadlockError, LockTimeoutError):
                self._abort_quietly(session)
                attempt += 1
                if attempt > retries:
                    raise
                self.metrics.record_retry()
                time.sleep(self._backoff(attempt))
            except BaseException:
                self._abort_quietly(session)
                raise

    def run_spec(self, spec: TransactionSpec, *,
                 max_retries: int | None = None) -> list[Any]:
        """Replay one workload :class:`TransactionSpec` with retry."""

        def replay(session: Session) -> list[Any]:
            results: list[Any] = []
            for operation in spec.operations:
                results.append(session.perform(operation))
            return results

        return self.run_transaction(replay, label=spec.label,
                                    max_retries=max_retries)

    def _abort_quietly(self, session: Session) -> None:
        if not session.transaction.is_finished:
            self.abort(session.transaction)

    def _backoff(self, attempt: int) -> float:
        delay = min(self._backoff_cap, self._backoff_base * (2 ** (attempt - 1)))
        with self._rng_mutex:
            jitter = self._backoff_rng.uniform(0.5, 1.0)
        return delay * jitter

    # -- introspection ------------------------------------------------------------

    @property
    def protocol(self) -> ConcurrencyControlProtocol:
        """The concurrency-control protocol in use."""
        return self._protocol

    @property
    def lock_manager(self) -> BlockingLockManager:
        """The blocking lock manager (tests, detector)."""
        return self._locks

    @property
    def recovery(self) -> RecoveryManager:
        """The recovery manager (undo logs)."""
        return self._recovery

    @property
    def interpreter(self) -> Interpreter:
        """The interpreter executing method bodies."""
        return self._interpreter

    @property
    def detector(self) -> DeadlockDetector:
        """The background deadlock detector."""
        return self._detector

    @property
    def commit_log(self) -> tuple[tuple[int, str], ...]:
        """``(txn_id, label)`` pairs in commit order (a serialisation order)."""
        with self._commit_mutex:
            return tuple(self._commit_log)

    def _ensure_open(self) -> None:
        if self._closed:
            raise TransactionError("the engine has been closed")
