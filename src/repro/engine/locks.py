"""Blocking lock acquisition on top of the event-driven lock manager.

:class:`~repro.locking.manager.LockManager` is deliberately passive: a
request either is granted or joins a FIFO queue, and releases report which
queued requests became grantable.  :class:`BlockingLockManager` turns that
interface into what OS threads need — ``acquire`` blocks the calling thread
on a condition variable until its queued request is granted, the per-request
timeout expires, or a deadlock detector marks the transaction as a victim.

All inner lock-manager state is guarded by one mutex; the condition variable
shares it, so waiters re-check their state atomically with every grant and
doom decision.  Deadlock detection itself lives in
:class:`~repro.engine.detector.DeadlockDetector`, which calls :meth:`detect`
periodically (and immediately after any request blocks, via the
``on_block`` hook).
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.errors import DeadlockError, LockTimeoutError
from repro.locking.deadlock import find_cycle
from repro.locking.manager import LockManager, Mode, Resource, TxnId

#: Sentinel meaning "use the manager's default timeout" — distinct from
#: ``None``, which means "wait forever".
USE_DEFAULT_TIMEOUT = object()


class BlockingLockManager:
    """Condition-variable blocking, timeouts and victim abort for one protocol.

    One instance wraps one :class:`LockManager` and serves every worker
    thread of one :class:`~repro.engine.engine.Engine`.  A transaction must
    only ever be driven from one thread at a time (the session contract), but
    any number of transactions may block concurrently.
    """

    def __init__(self, inner: LockManager, *,
                 default_timeout: float | None = None) -> None:
        self._inner = inner
        self._mutex = threading.Lock()
        self._changed = threading.Condition(self._mutex)
        #: Deadlock victims not yet aborted: txn -> the cycle it was on.
        self._doomed: dict[TxnId, tuple[TxnId, ...]] = {}
        self._default_timeout = default_timeout
        #: Called (outside any lock decision, but under the mutex is avoided)
        #: whenever a request starts waiting; the engine wires it to the
        #: deadlock detector's nudge so cycles are found promptly.
        self.on_block: Callable[[], None] | None = None

    # -- acquiring -------------------------------------------------------------

    def acquire(self, txn: TxnId, resource: Resource, mode: Mode,
                timeout: float | None | object = USE_DEFAULT_TIMEOUT) -> float:
        """Block until ``txn`` holds ``mode`` on ``resource``.

        Returns the seconds spent blocked (``0.0`` on an immediate grant).

        Raises:
            LockTimeoutError: the request stayed queued past ``timeout``
                seconds (the manager's default when not given).  The queued
                request is withdrawn; locks already held are untouched.
            DeadlockError: the deadlock detector chose ``txn`` as a victim
                while it was waiting (or before it could even queue).  The
                caller must abort the transaction.
        """
        if timeout is USE_DEFAULT_TIMEOUT:
            timeout = self._default_timeout
        with self._mutex:
            self._ensure_not_doomed(txn)
            outcome = self._inner.request(txn, resource, mode)
            if outcome.granted:
                return 0.0
        if self.on_block is not None:
            self.on_block()
        started = time.monotonic()
        deadline = None if timeout is None else started + timeout
        with self._mutex:
            while True:
                if txn in self._doomed:
                    self._withdraw(txn, resource, mode)
                    self._raise_doomed(txn, waited=time.monotonic() - started)
                if self._inner.holds(txn, resource, mode):
                    return time.monotonic() - started
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        self._withdraw(txn, resource, mode)
                        holders = tuple(self._inner.holders(resource))
                        raise LockTimeoutError(
                            f"transaction {txn} timed out after {timeout}s "
                            f"waiting for {resource!r} in mode {mode!r}; "
                            f"held by {holders}", holders=holders,
                            waited=time.monotonic() - started)
                self._changed.wait(remaining)

    # -- releasing -------------------------------------------------------------

    def release_all(self, txn: TxnId) -> None:
        """Release every lock of ``txn``, clear its doom flag, wake waiters."""
        with self._mutex:
            self._inner.release_all(txn)
            self._doomed.pop(txn, None)
            self._changed.notify_all()

    # -- deadlock detection ----------------------------------------------------

    def detect(self) -> tuple[TxnId, ...]:
        """Find deadlock cycles and doom one victim per cycle.

        The victim of each cycle is the youngest transaction on it (largest
        identifier — identifiers are allocated monotonically), matching the
        simulator's policy.  Transactions already doomed are excluded from
        the waits-for graph: they are about to abort, which breaks any cycle
        through them.  Returns the newly doomed victims.
        """
        with self._mutex:
            edges = {waiter: targets
                     for waiter, targets in self._inner.waits_for_edges().items()
                     if waiter not in self._doomed}
            victims: list[TxnId] = []
            while True:
                cycle = find_cycle(edges)
                if not cycle:
                    break
                victim = max(cycle)
                self._doomed[victim] = tuple(cycle)
                victims.append(victim)
                edges.pop(victim, None)
            if victims:
                self._changed.notify_all()
            return tuple(victims)

    # -- introspection ---------------------------------------------------------

    @property
    def inner(self) -> LockManager:
        """The wrapped event-driven lock manager (tests, metrics)."""
        return self._inner

    def holds(self, txn: TxnId, resource: Resource, mode: Mode | None = None) -> bool:
        """Whether ``txn`` currently holds (that mode of) ``resource``."""
        with self._mutex:
            return self._inner.holds(txn, resource, mode)

    def waiting(self, resource: Resource) -> tuple[tuple[TxnId, Mode], ...]:
        """Queued requests on ``resource`` in FIFO order."""
        with self._mutex:
            return self._inner.waiting(resource)

    def doomed_transactions(self) -> frozenset[TxnId]:
        """Victims chosen by the detector that have not yet aborted."""
        with self._mutex:
            return frozenset(self._doomed)

    # -- internals -------------------------------------------------------------

    def _withdraw(self, txn: TxnId, resource: Resource, mode: Mode) -> None:
        promoted = self._inner.cancel(txn, resource, mode)
        if promoted:
            self._changed.notify_all()

    def _ensure_not_doomed(self, txn: TxnId) -> None:
        if txn in self._doomed:
            self._raise_doomed(txn)

    def _raise_doomed(self, txn: TxnId, waited: float = 0.0) -> None:
        cycle = self._doomed[txn]
        raise DeadlockError(
            f"transaction {txn} was chosen as the deadlock victim of the "
            f"cycle {cycle}", victim=txn, cycle=cycle, waited=waited)
