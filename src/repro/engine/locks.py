"""Blocking lock acquisition on top of the event-driven lock manager.

:class:`~repro.locking.manager.LockManager` is deliberately passive: a
request either is granted or joins a FIFO queue, and releases report which
queued requests became grantable.  :class:`BlockingLockManager` turns that
interface into what OS threads need — ``acquire`` blocks the calling thread
on a condition variable until its queued request is granted, the per-request
timeout expires, or a deadlock detector marks the transaction as a victim.

All inner lock-manager state is guarded by one mutex; the condition variable
shares it, so waiters re-check their state atomically with every grant and
doom decision.  Deadlock detection itself lives in
:class:`~repro.engine.detector.DeadlockDetector`, which calls :meth:`detect`
periodically (and immediately after any request blocks, via the
``on_block`` hook).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Hashable, Mapping

from repro.errors import DeadlockError, LockTimeoutError
from repro.locking.deadlock import choose_victim, find_cycle
from repro.locking.manager import (  # noqa: F401 - USE_DEFAULT_TIMEOUT re-exported
    USE_DEFAULT_TIMEOUT,
    LockManager,
    Mode,
    Resource,
    TxnId,
)


class BlockingLockManager:
    """Condition-variable blocking, timeouts and victim abort for one protocol.

    One instance wraps one :class:`LockManager` and serves every worker
    thread of one :class:`~repro.engine.engine.Engine`.  A transaction must
    only ever be driven from one thread at a time (the session contract), but
    any number of transactions may block concurrently.
    """

    def __init__(self, inner: LockManager, *,
                 default_timeout: float | None = None,
                 victim_key: Callable[[TxnId], Hashable] | None = None) -> None:
        self._inner = inner
        self._mutex = threading.Lock()
        self._changed = threading.Condition(self._mutex)
        #: Deadlock victims not yet aborted: txn -> the cycle it was on.
        self._doomed: dict[TxnId, tuple[TxnId, ...]] = {}
        self._default_timeout = default_timeout
        #: Age order used by :meth:`detect` to pick victims; ``None`` compares
        #: raw identifiers.  The engine passes the original begin timestamp so
        #: retried incarnations keep their seniority (wait-die style).
        self.victim_key = victim_key
        #: Called (outside any lock decision, but under the mutex is avoided)
        #: whenever a request starts waiting; the engine wires it to the
        #: deadlock detector's nudge so cycles are found promptly.
        self.on_block: Callable[[], None] | None = None
        #: Per-resource contention: resource -> [blocked requests, seconds
        #: spent blocked].  Only requests that actually waited are counted,
        #: whatever their outcome (grant, timeout or victim abort) — the
        #: blocked time is real contention either way.
        self._contention: dict[Resource, list[float]] = {}
        #: Victims this manager has doomed (its own detector passes and
        #: cross-shard dooms both count).
        self._victims = 0

    # -- acquiring -------------------------------------------------------------

    def acquire(self, txn: TxnId, resource: Resource, mode: Mode,
                timeout: float | None | object = USE_DEFAULT_TIMEOUT,
                trace: object = None) -> float:
        """Block until ``txn`` holds ``mode`` on ``resource``.

        Returns the seconds spent blocked (``0.0`` on an immediate grant).

        ``trace`` is an opaque trace context accepted for signature parity
        with the remote shard handle (the sharded front passes it through
        uniformly).  A local acquire has no RPC hop to annotate — the
        engine's own lock span covers it — so it is ignored here.

        Timeout contract: ``None`` waits forever; a positive timeout bounds
        the wait; a timeout of **zero or less is a deterministic try-lock** —
        an incompatible resource raises :class:`LockTimeoutError` immediately
        and the probe leaves no queuing side effects (the momentary queue
        entry is withdrawn before the manager's mutex is released, so no
        other thread can ever observe it, block behind it, or wait for a
        wakeup because of it).

        Raises:
            LockTimeoutError: the request stayed queued past ``timeout``
                seconds (the manager's default when not given), or the
                resource was busy and the timeout was non-positive.  The
                queued request is withdrawn; locks already held are
                untouched.
            DeadlockError: the deadlock detector chose ``txn`` as a victim
                while it was waiting (or before it could even queue).  The
                caller must abort the transaction.
        """
        if timeout is USE_DEFAULT_TIMEOUT:
            timeout = self._default_timeout
        with self._mutex:
            self._ensure_not_doomed(txn)
            outcome = self._inner.request(txn, resource, mode)
            if outcome.granted:
                return 0.0
            if timeout is not None and timeout <= 0:
                # Fail-fast try-lock: withdraw atomically with the probe.
                self._withdraw(txn, resource, mode)
                raise LockTimeoutError(
                    f"transaction {txn} could not try-lock {resource!r} in "
                    f"mode {mode!r} (timeout={timeout}); held by "
                    f"{outcome.blockers}", holders=outcome.blockers,
                    waited=0.0)
        if self.on_block is not None:
            self.on_block()
        started = time.monotonic()
        deadline = None if timeout is None else started + timeout
        with self._mutex:
            while True:
                if txn in self._doomed:
                    self._withdraw(txn, resource, mode)
                    self._note_wait(resource, time.monotonic() - started)
                    self._raise_doomed(txn, waited=time.monotonic() - started)
                if self._inner.holds(txn, resource, mode):
                    waited = time.monotonic() - started
                    self._note_wait(resource, waited)
                    return waited
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        self._withdraw(txn, resource, mode)
                        holders = tuple(self._inner.holders(resource))
                        self._note_wait(resource, time.monotonic() - started)
                        raise LockTimeoutError(
                            f"transaction {txn} timed out after {timeout}s "
                            f"waiting for {resource!r} in mode {mode!r}; "
                            f"held by {holders}", holders=holders,
                            waited=time.monotonic() - started)
                self._changed.wait(remaining)

    # -- releasing -------------------------------------------------------------

    def release_all(self, txn: TxnId) -> None:
        """Release every lock of ``txn``, clear its doom flag, wake waiters."""
        with self._mutex:
            self._inner.release_all(txn)
            self._doomed.pop(txn, None)
            self._changed.notify_all()

    # -- deadlock detection ----------------------------------------------------

    def detect(self) -> tuple[TxnId, ...]:
        """Find deadlock cycles and doom one victim per cycle.

        The victim of each cycle is the youngest transaction on it, where
        "youngest" is decided by :attr:`victim_key` (largest identifier when
        unset — identifiers are allocated monotonically), matching the
        simulator's policy.  Transactions already doomed are excluded from
        the waits-for graph: they are about to abort, which breaks any cycle
        through them.  Returns the newly doomed victims.
        """
        with self._mutex:
            edges = {waiter: targets
                     for waiter, targets in self._inner.waits_for_edges().items()
                     if waiter not in self._doomed}
            victims: list[TxnId] = []
            while True:
                cycle = find_cycle(edges)
                if not cycle:
                    break
                victim = choose_victim(cycle, self.victim_key)
                self._doomed[victim] = tuple(cycle)
                victims.append(victim)
                edges.pop(victim, None)
            if victims:
                self._victims += len(victims)
                self._changed.notify_all()
            return tuple(victims)

    # -- cross-shard coordination ----------------------------------------------
    #
    # A sharded front-end (repro.sharding.locks.ShardedLockFront) runs cycle
    # detection over the *union* of many managers' waits-for graphs and then
    # dooms the victims in every shard.  These three methods are the pieces
    # detect() is made of, exposed so the coordinator can interleave them.

    def collect_edges(self) -> dict[TxnId, set[TxnId]]:
        """This manager's waits-for edges, minus transactions already doomed."""
        with self._mutex:
            return {waiter: set(targets)
                    for waiter, targets in self._inner.waits_for_edges().items()
                    if waiter not in self._doomed}

    def doom(self, victims: Mapping[TxnId, tuple[TxnId, ...]]) -> tuple[TxnId, ...]:
        """Doom those of ``victims`` (txn -> cycle) that are *waiting here*.

        A cross-shard coordinator chooses victims from a union snapshot
        assembled outside any shard mutex, so a chosen victim may have been
        granted — or have committed — by the time the doom arrives.  Only
        transactions with a queued request in this shard are marked: they
        will wake, withdraw and abort.  A victim that no longer waits
        anywhere had its cycle resolve on its own, and skipping it is what
        keeps a stale doom flag from outliving the transaction (identifiers
        are never reused, so nobody would ever clear it).

        Returns the victims actually marked here, so the coordinator can
        attribute deadlock victims to shards.
        """
        if not victims:
            return ()
        with self._mutex:
            blocked = self._inner.blocked_transactions()
            relevant = {txn: cycle for txn, cycle in victims.items()
                        if txn in blocked}
            if relevant:
                self._doomed.update(relevant)
                self._victims += len(relevant)
                self._changed.notify_all()
            return tuple(relevant)

    def clear_doom(self, txn: TxnId) -> None:
        """Forget a doom flag without releasing anything (victim finished).

        The unsynchronised membership probe is safe because :meth:`doom`
        only ever marks a transaction with a request queued *in this shard*
        (checked under the mutex), and a transaction that reached release
        time has no queued request anywhere — grants, timeouts and victim
        aborts all withdraw before returning.  No doom flag can therefore
        appear concurrently with this call; the probe can only see a flag
        set before the release began.
        """
        if txn in self._doomed:
            with self._mutex:
                self._doomed.pop(txn, None)

    # -- introspection ---------------------------------------------------------

    @property
    def inner(self) -> LockManager:
        """The wrapped event-driven lock manager (tests, metrics)."""
        return self._inner

    def holds(self, txn: TxnId, resource: Resource, mode: Mode | None = None) -> bool:
        """Whether ``txn`` currently holds (that mode of) ``resource``."""
        with self._mutex:
            return self._inner.holds(txn, resource, mode)

    def waiting(self, resource: Resource) -> tuple[tuple[TxnId, Mode], ...]:
        """Queued requests on ``resource`` in FIFO order."""
        with self._mutex:
            return self._inner.waiting(resource)

    def doomed_transactions(self) -> frozenset[TxnId]:
        """Victims chosen by the detector that have not yet aborted."""
        with self._mutex:
            return frozenset(self._doomed)

    @property
    def victims_doomed(self) -> int:
        """Deadlock victims ever doomed through this manager."""
        with self._mutex:
            return self._victims

    def hot_resources(self, top: int = 8) -> list[tuple[Resource, int, float]]:
        """The ``top`` most contended resources as ``(resource, waits,
        wait_seconds)``, sorted by total blocked time."""
        with self._mutex:
            entries = [(resource, int(tally[0]), tally[1])
                       for resource, tally in self._contention.items()]
        entries.sort(key=lambda entry: entry[2], reverse=True)
        return entries[:top]

    # -- internals -------------------------------------------------------------

    def _note_wait(self, resource: Resource, waited: float) -> None:
        """Attribute one blocked request to ``resource`` (mutex held)."""
        if waited <= 0.0:
            return
        tally = self._contention.get(resource)
        if tally is None:
            self._contention[resource] = [1, waited]
        else:
            tally[0] += 1
            tally[1] += waited

    def _withdraw(self, txn: TxnId, resource: Resource, mode: Mode) -> None:
        promoted = self._inner.cancel(txn, resource, mode)
        if promoted:
            self._changed.notify_all()

    def _ensure_not_doomed(self, txn: TxnId) -> None:
        if txn in self._doomed:
            self._raise_doomed(txn)

    def _raise_doomed(self, txn: TxnId, waited: float = 0.0) -> None:
        cycle = self._doomed[txn]
        raise DeadlockError(
            f"transaction {txn} was chosen as the deadlock victim of the "
            f"cycle {cycle}", victim=txn, cycle=cycle, waited=waited)
