"""Wall-clock metrics for the threaded execution engine.

:class:`EngineMetrics` is the real-time counterpart of
:class:`~repro.sim.metrics.SimulationMetrics`: the structural counters carry
the same names (``committed``, ``aborted``, ``deadlocks``, ``lock_requests``,
``waits``), so an engine run and a simulation of the same workload can be
laid side by side, but time is measured in seconds, not steps — the rates
(commits/sec, mean wait time) are what the paper's headline claim is about
once schedules are real.

Beyond the flat counters, every metrics object carries one
:class:`~repro.obs.histogram.LatencyHistogram` per :data:`HISTOGRAMS`
stage.  The histograms share one fixed bucket layout, so worker-process
metrics merge losslessly into the engine's cluster snapshot and the
socket harness can subtract a "before" snapshot exactly (:meth:`delta`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.obs.histogram import LatencyHistogram

#: The per-stage latency histograms every metrics object carries:
#: ``commit_latency`` (dispatcher-side, whole commit call), ``lock_wait``
#: (engine-side, blocked acquires only), ``rpc`` (participant round trips
#: net of lock-wait time) and ``barrier`` (WAL/decision-log flush+fsync).
HISTOGRAMS = ("commit_latency", "lock_wait", "rpc", "barrier")


def _new_histograms() -> dict[str, LatencyHistogram]:
    return {name: LatencyHistogram() for name in HISTOGRAMS}


@dataclass
class EngineMetrics:
    """Thread-safe counters accumulated by one :class:`Engine`.

    Worker threads update counters through the ``record_*`` methods, which
    take an internal mutex; reads of individual fields are unsynchronised
    snapshots (fine for reporting once the workload has quiesced).  The
    latency histograms carry their own finer-grained locks and are never
    touched under the counter mutex.
    """

    #: Transactions started (every retry incarnation counts).
    begun: int = 0
    #: Transactions committed.
    committed: int = 0
    #: Committed transactions whose writes/locks spanned more than one shard
    #: (these paid the full two-phase commit; always 0 with one shard).
    cross_shard_commits: int = 0
    #: Transactions aborted (victim aborts and timeout aborts both count).
    aborted: int = 0
    #: Aborted transactions that were retried by ``run_transaction``.
    retries: int = 0
    #: Victims doomed by the deadlock detector.
    deadlocks: int = 0
    #: Lock requests that expired their timeout.
    timeouts: int = 0
    #: Phase-two or abort completions that found their participant
    #: unreachable (survivable under presumed abort — the restarted worker
    #: resolves itself against the decision log — but worth watching).
    unavailable_completions: int = 0
    #: Lock requests issued through the blocking manager.
    lock_requests: int = 0
    #: Requests that blocked the calling thread.
    waits: int = 0
    #: Total seconds threads spent blocked on locks.
    wait_time: float = 0.0
    #: Operations executed successfully.
    operations: int = 0
    #: Shard-worker RPC requests issued by the coordinating engine (lock
    #: acquires, plan/execute shipments, 2PC messages — the worker-layer
    #: round-trip count the batching work optimises; 0 without workers).
    rpc_requests: int = 0
    #: Reply frames the socket server sent to clients (the client-layer
    #: round-trip count; 0 in-process).  One pipelined batch or program is
    #: one frame however many commands it carries.
    frames_sent: int = 0
    #: Lock-plan cache hits (plans reused without re-running the planner).
    plan_cache_hits: int = 0
    #: Lock-plan cache misses (the planner really ran).
    plan_cache_misses: int = 0
    #: Operations admitted under the non-exclusive escrow mode (no ordinary
    #: lock taken; the counter delta merged directly).
    escrow_admits: int = 0
    #: Escrow-eligible operations that fell back to ordinary locking
    #: (worker mode, prior ordinary write of the field, unevaluable delta).
    escrow_fallbacks: int = 0
    #: Read-only operations served from the lock-free snapshot path.
    snapshot_reads: int = 0
    #: Read-only operations that fell back to the locked path (worker mode).
    snapshot_fallbacks: int = 0
    #: Wall-clock seconds of the measured run (set by the harness).
    elapsed: float = 0.0
    #: Bytes appended to the write-ahead and decision logs (set by the
    #: harness from :attr:`Engine.wal_bytes_written`; 0 with durability off).
    wal_bytes: int = 0

    #: Per-stage latency histograms (see :data:`HISTOGRAMS`).
    histograms: dict[str, LatencyHistogram] = field(
        default_factory=_new_histograms, repr=False, compare=False)

    _mutex: threading.Lock = field(default_factory=threading.Lock, repr=False,
                                   compare=False)

    #: The counters that travel over the API's ``MetricsSnapshot`` control
    #: message — everything above except the mutex and the histograms
    #: (which travel under their own ``"histograms"`` key).
    _FIELDS = ("begun", "committed", "cross_shard_commits", "aborted",
               "retries", "deadlocks", "timeouts", "unavailable_completions",
               "lock_requests", "waits", "wait_time", "operations",
               "rpc_requests", "frames_sent",
               "plan_cache_hits", "plan_cache_misses",
               "escrow_admits", "escrow_fallbacks",
               "snapshot_reads", "snapshot_fallbacks",
               "elapsed", "wal_bytes")

    # -- wire round trip ---------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """The raw counters as one consistent, JSON-representable mapping.

        The scalar counters are read under the mutex; the nested
        ``"histograms"`` entry maps stage name to the histogram's own
        JSON-safe snapshot.
        """
        with self._mutex:
            snapshot: dict[str, Any] = {name: getattr(self, name)
                                        for name in self._FIELDS}
        snapshot["histograms"] = {name: histogram.snapshot()
                                  for name, histogram in self.histograms.items()}
        return snapshot

    @classmethod
    def from_snapshot(cls, snapshot: Mapping[str, Any]) -> "EngineMetrics":
        """Rebuild metrics from :meth:`snapshot` (the remote harness path)."""
        metrics = cls()
        for name in cls._FIELDS:
            if name in snapshot:
                setattr(metrics, name, snapshot[name])
        for name, document in dict(snapshot.get("histograms") or {}).items():
            metrics.histograms[name] = LatencyHistogram.from_snapshot(document)
        return metrics

    @classmethod
    def delta(cls, after: Mapping[str, Any],
              before: Mapping[str, Any]) -> "EngineMetrics":
        """The metrics of the interval between two snapshots.

        Scalar counters subtract; histograms subtract bucket-wise (exact
        under the shared fixed layout).  This is how the socket harness
        isolates one run against a server that may have served others.
        """
        metrics = cls.from_snapshot(after)
        for name in cls._FIELDS:
            if name in before:
                setattr(metrics, name, getattr(metrics, name) - before[name])
        for name, document in dict(before.get("histograms") or {}).items():
            if name in metrics.histograms:
                metrics.histograms[name].subtract(
                    LatencyHistogram.from_snapshot(document))
        return metrics

    # -- recording (called from worker threads) --------------------------------

    def record_begin(self) -> None:
        with self._mutex:
            self.begun += 1

    def record_commit(self, *, cross_shard: bool = False) -> None:
        with self._mutex:
            self.committed += 1
            if cross_shard:
                self.cross_shard_commits += 1

    def record_abort(self) -> None:
        with self._mutex:
            self.aborted += 1

    def record_retry(self) -> None:
        with self._mutex:
            self.retries += 1

    def record_deadlocks(self, count: int) -> None:
        with self._mutex:
            self.deadlocks += count

    def record_timeout(self) -> None:
        with self._mutex:
            self.timeouts += 1

    def record_unavailable(self) -> None:
        with self._mutex:
            self.unavailable_completions += 1

    def record_requests(self, count: int, waited: float) -> None:
        with self._mutex:
            self.lock_requests += count
            if waited > 0.0:
                self.waits += 1
                self.wait_time += waited
        if waited > 0.0:
            self.histograms["lock_wait"].record(waited)

    def record_operation(self) -> None:
        with self._mutex:
            self.operations += 1

    def record_rpc_requests(self, count: int = 1) -> None:
        with self._mutex:
            self.rpc_requests += count

    def record_frames(self, count: int = 1) -> None:
        with self._mutex:
            self.frames_sent += count

    def record_plan_cache(self, hit: bool) -> None:
        with self._mutex:
            if hit:
                self.plan_cache_hits += 1
            else:
                self.plan_cache_misses += 1

    def record_escrow_admit(self) -> None:
        with self._mutex:
            self.escrow_admits += 1

    def record_escrow_fallback(self) -> None:
        with self._mutex:
            self.escrow_fallbacks += 1

    def record_snapshot_read(self) -> None:
        with self._mutex:
            self.snapshot_reads += 1

    def record_snapshot_fallback(self) -> None:
        with self._mutex:
            self.snapshot_fallbacks += 1

    def record_latency(self, name: str, seconds: float) -> None:
        """Add one observation to the named stage histogram."""
        self.histograms[name].record(seconds)

    # -- derived rates ---------------------------------------------------------

    @property
    def commits_per_second(self) -> float:
        """Committed transactions per wall-clock second of the run."""
        if self.elapsed <= 0.0:
            return 0.0
        return self.committed / self.elapsed

    @property
    def abort_rate(self) -> float:
        """Aborted incarnations over all finished incarnations."""
        finished = self.committed + self.aborted
        if finished == 0:
            return 0.0
        return self.aborted / finished

    @property
    def mean_wait_time(self) -> float:
        """Average seconds a blocking request spent waiting."""
        if self.waits == 0:
            return 0.0
        return self.wait_time / self.waits

    @property
    def wal_bytes_per_commit(self) -> float:
        """Log bytes the durability subsystem paid per committed transaction."""
        if self.committed == 0:
            return 0.0
        return self.wal_bytes / self.committed

    @property
    def plan_cache_hit_rate(self) -> float:
        """Cache hits over all plan lookups (0.0 before any lookup)."""
        lookups = self.plan_cache_hits + self.plan_cache_misses
        if lookups == 0:
            return 0.0
        return self.plan_cache_hits / lookups

    def commit_percentile(self, q: float) -> float:
        """Commit-latency percentile in seconds (0.0 before any commit)."""
        return self.histograms["commit_latency"].percentile(q)

    def as_row(self) -> dict[str, float]:
        """A flat dictionary for the reporting tables."""
        return {
            "committed": self.committed,
            "xshard": self.cross_shard_commits,
            "aborted": self.aborted,
            "retries": self.retries,
            "deadlocks": self.deadlocks,
            "timeouts": self.timeouts,
            "lock_requests": self.lock_requests,
            "waits": self.waits,
            "operations": self.operations,
            "rpcs": self.rpc_requests,
            "frames": self.frames_sent,
            "plan_hit_rate": round(self.plan_cache_hit_rate, 3),
            "escrow_admits": self.escrow_admits,
            "snapshot_reads": self.snapshot_reads,
            "elapsed_s": round(self.elapsed, 3),
            "commits_per_s": round(self.commits_per_second, 1),
            "abort_rate": round(self.abort_rate, 3),
            "mean_wait_ms": round(self.mean_wait_time * 1000, 2),
            "p50_ms": round(self.commit_percentile(50.0) * 1000, 2),
            "p95_ms": round(self.commit_percentile(95.0) * 1000, 2),
            "p99_ms": round(self.commit_percentile(99.0) * 1000, 2),
            "wal": round(self.wal_bytes_per_commit, 1),
        }
