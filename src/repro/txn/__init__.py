"""Transactions: operations, life cycle, recovery and the transaction manager.

The concurrency-control protocols live in :mod:`repro.txn.protocols`; the
:class:`~repro.txn.manager.TransactionManager` combines a protocol, a lock
manager, an interpreter and a recovery log into a usable strict two-phase
locking object base.
"""

from repro.txn.operations import (
    DomainAllCall,
    DomainSomeCall,
    ExtentCall,
    MethodCall,
    Operation,
)
from repro.txn.transaction import Transaction, TransactionState
from repro.txn.recovery import RecoveryManager, UndoRecord
from repro.txn.manager import TransactionManager

__all__ = [
    "DomainAllCall",
    "DomainSomeCall",
    "ExtentCall",
    "MethodCall",
    "Operation",
    "RecoveryManager",
    "Transaction",
    "TransactionManager",
    "TransactionState",
    "UndoRecord",
]
