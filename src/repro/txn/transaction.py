"""Transaction objects and their life cycle."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.errors import TransactionError
from repro.txn.operations import Operation


class TransactionState(enum.Enum):
    """The strict two-phase-locking life cycle of a transaction."""

    ACTIVE = "active"
    BLOCKED = "blocked"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class TransactionStats:
    """Per-transaction counters collected while it runs."""

    operations: int = 0
    lock_requests: int = 0
    control_points: int = 0
    waits: int = 0
    restarts: int = 0


@dataclass
class Transaction:
    """A transaction: identifier, state and accumulated statistics.

    The identifier doubles as the start timestamp (it is allocated
    monotonically), which the deadlock victim selection relies on.  A
    *retried* incarnation gets a fresh identifier but keeps the ``origin``
    timestamp of its first incarnation, so victim selection can rank it by
    when its work actually began (wait-die style) instead of treating every
    retry as the youngest transaction in the system.
    """

    txn_id: int
    #: The begin timestamp of the first incarnation of this logical
    #: transaction; equals ``txn_id`` unless set by a retrying caller.
    origin: int | None = None
    #: Declared read-only at begin: the engine serves it from a committed
    #: snapshot and it never touches the lock manager.
    read_only: bool = False
    state: TransactionState = TransactionState.ACTIVE
    stats: TransactionStats = field(default_factory=TransactionStats)
    #: Results of completed operations, in submission order.
    results: list[Any] = field(default_factory=list)
    #: Operations executed so far (used on restart after a deadlock abort).
    executed: list[Operation] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.origin is None:
            self.origin = self.txn_id

    @property
    def is_active(self) -> bool:
        """``True`` while the transaction may issue operations."""
        return self.state is TransactionState.ACTIVE

    @property
    def is_finished(self) -> bool:
        """``True`` once committed or aborted."""
        return self.state in (TransactionState.COMMITTED, TransactionState.ABORTED)

    def ensure_active(self) -> None:
        """Raise unless the transaction is active.

        Raises:
            TransactionError: when the transaction is blocked or finished.
        """
        if self.state is not TransactionState.ACTIVE:
            raise TransactionError(
                f"transaction {self.txn_id} is {self.state.value}; "
                "it cannot issue operations")

    def __str__(self) -> str:
        return f"T{self.txn_id}[{self.state.value}]"
