"""The escrow ledger: commutativity-proved counter updates at run time.

The compiler (:mod:`repro.core.commutativity`) proves some methods are pure
counter updates ``f := f ± delta``.  Two such updates commute *semantically*
even though their access vectors conflict — addition of deltas is commutative
and associative — so the engine admits them under the non-exclusive
:class:`~repro.locking.modes.EscrowMode` instead of the method's ordinary
exclusive mode, and this ledger owns what that admission means for state:

* **apply** — the delta is written through to the store *atomically with*
  its :class:`~repro.wal.records.EscrowDelta` log record (both under the
  shard WAL's append mutex).  That atomicity is what makes the checkpoint's
  ``last_lsn`` an exact boundary: a delta stamped at or below it is inside
  the snapshot, one above it is not.
* **undo** — an aborting transaction's deltas are *inverse-applied*, not
  restored from a before-image (an absolute image would erase concurrent
  escrow work on the same field).  Each inverse application is itself logged
  as an ``EscrowDelta`` of the opposite sign, which makes runtime undo
  idempotent under crash replay: a fuzzy checkpoint that snapshots a
  half-undone transaction keeps both the original and the inverse records,
  and recovery's LSN rules cancel them pairwise.
* **pending** — a transaction with escrow deltas has no undo images, so the
  recovery manager's pending set cannot see it; the ledger exposes its own
  per-shard pending set and the checkpointer unions the two for its
  keep-read.  A transaction leaves the set (:meth:`seal`) only once its
  deltas are final — after the commit decision is durable, or after undo has
  fully reverted them — each removal made under the shard WAL mutex so the
  keep-read never observes a torn state.

The ledger takes one mutex per shard, ordered by shard id; :meth:`frozen`
acquires them all, which is how the snapshot-read builder gets a consistent
view of applied-but-uncommitted deltas without stopping writers for long.
"""

from __future__ import annotations

import threading
from contextlib import ExitStack, contextmanager
from typing import TYPE_CHECKING, Any, Iterator, Sequence

from repro.objects.oid import OID
from repro.wal.records import EscrowDelta

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.sharding.router import ShardRouter
    from repro.wal.log import WriteAheadLog


class EscrowLedger:
    """Per-transaction escrow deltas: write-through apply, inverse undo."""

    def __init__(self, store, router: "ShardRouter", shard_count: int,
                 wals: "Sequence[WriteAheadLog | None] | None" = None) -> None:
        self._store = store
        self._router = router
        self._wals: tuple["WriteAheadLog | None", ...] = (
            tuple(wals) if wals is not None else (None,) * shard_count)
        self._mutexes = tuple(threading.RLock() for _ in range(shard_count))
        #: txn -> [(shard, oid, field, delta)] in application order; entries
        #: are removed one by one as undo reverts them, so a reader under
        #: :meth:`frozen` always sees exactly the deltas still in the store.
        self._entries: dict[int, list[tuple[int, OID, str, Any]]] = {}
        self._entries_mutex = threading.Lock()
        #: Per shard, the transactions whose delta records the checkpoint
        #: keep-read must preserve.
        self._pending: tuple[set[int], ...] = tuple(set() for _ in range(shard_count))
        #: Escrow admissions over this ledger's life (monotonic).
        self.applied = 0

    # -- the write path ----------------------------------------------------------

    def apply(self, txn: int, oid: OID, field: str, delta: Any) -> Any:
        """Merge ``delta`` into ``oid.field`` on behalf of ``txn``.

        Returns the new field value.  Durable shards log the delta and apply
        it under one WAL-mutex hold; the ledger entry is recorded under the
        same shard mutex so :meth:`frozen` readers see entry and store value
        appear together.
        """
        shard = self._router.shard_of_oid(oid)
        with self._mutexes[shard]:
            value = self._write_through(shard, txn, oid, field, delta)
            with self._entries_mutex:
                self._entries.setdefault(txn, []).append((shard, oid, field, delta))
            self.applied += 1
        return value

    def _write_through(self, shard: int, txn: int, oid: OID, field: str,
                       delta: Any) -> Any:
        wal = self._wals[shard]
        if wal is None:
            value = self._store.read_field(oid, field) + delta
            self._store.write_field(oid, field, value)
            self._pending[shard].add(txn)
            return value
        with wal.mutex:
            # Pending first, then the record, then the store write — all under
            # the WAL mutex the checkpointer's keep-read holds, so a snapshot
            # containing the new value always keeps the record that explains it.
            self._pending[shard].add(txn)
            wal.append(EscrowDelta(txn=txn, oid=oid, field=field, delta=delta))
            value = self._store.read_field(oid, field) + delta
            self._store.write_field(oid, field, value)
            return value

    # -- resolution --------------------------------------------------------------

    def undo(self, txn: int) -> int:
        """Inverse-apply every delta of ``txn`` (newest first); returns count.

        Each reversal is logged as an opposite-sign delta before the store
        write, so a crash at any point replays to the same result: recovery
        treats original and inverse records alike and they cancel.
        """
        with self._entries_mutex:
            entries = list(self._entries.get(txn, ()))
        for entry in reversed(entries):
            shard, oid, field, delta = entry
            with self._mutexes[shard]:
                self._write_through(shard, txn, oid, field, -delta)
                with self._entries_mutex:
                    bucket = self._entries.get(txn)
                    if bucket is not None:
                        bucket.remove(entry)
                        if not bucket:
                            del self._entries[txn]
        self.seal(txn)
        return len(entries)

    def forget(self, txn: int) -> None:
        """Drop a committed transaction's ledger state.

        Call only once the commit decision is durable: sealing releases the
        delta records to the next checkpoint rewrite, which is correct
        exactly when the snapshot may keep the deltas applied.
        """
        with self._entries_mutex:
            self._entries.pop(txn, None)
        self.seal(txn)

    def seal(self, txn: int) -> None:
        """Remove ``txn`` from every shard's pending set (WAL-atomically)."""
        for shard, pending in enumerate(self._pending):
            if txn not in pending:
                continue
            wal = self._wals[shard]
            if wal is None:
                with self._mutexes[shard]:
                    pending.discard(txn)
            else:
                with wal.mutex:
                    pending.discard(txn)

    # -- introspection -----------------------------------------------------------

    def pending(self, shard_id: int) -> tuple[int, ...]:
        """Transactions whose delta records shard ``shard_id`` must keep."""
        return tuple(self._pending[shard_id])

    def has_deltas(self, txn: int) -> bool:
        """Whether ``txn`` has applied-and-unresolved deltas."""
        with self._entries_mutex:
            return bool(self._entries.get(txn))

    def entries_of(self, txn: int) -> tuple[tuple[int, OID, str, Any], ...]:
        """The live ledger entries of one transaction (application order)."""
        with self._entries_mutex:
            return tuple(self._entries.get(txn, ()))

    def all_entries(self) -> dict[int, tuple[tuple[int, OID, str, Any], ...]]:
        """Every live entry, per transaction (call under :meth:`frozen`)."""
        with self._entries_mutex:
            return {txn: tuple(entries) for txn, entries in self._entries.items()}

    @contextmanager
    def frozen(self) -> Iterator[None]:
        """Hold every shard mutex: no delta can apply or revert inside."""
        with ExitStack() as stack:
            for mutex in self._mutexes:
                stack.enter_context(mutex)
            yield
