"""The operations a transaction can submit.

§5.2 of the paper classifies accesses into four kinds; each kind is one
operation type here:

* (i)   access to one instance of one class          → :class:`MethodCall`
* (ii)  access to (almost) all instances of a class  → :class:`ExtentCall`
* (iii) access to some instances of a whole domain   → :class:`DomainSomeCall`
* (iv)  access to all instances of a whole domain    → :class:`DomainAllCall`

Every operation sends the same method (with the same arguments) to each of
its target instances; the protocols differ only in which locks they take for
it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Union

from repro.objects.oid import OID
from repro.objects.store import ObjectStore


@dataclass(frozen=True)
class MethodCall:
    """Send ``method`` to a single instance (access kind i).

    ``as_class`` is the *static* class through which the instance is viewed;
    it defaults to the proper class of the instance and only matters for the
    relational baseline, where it determines which relations the equivalent
    SQL statement touches (§3).
    """

    oid: OID
    method: str
    arguments: tuple[Any, ...] = ()
    as_class: str | None = None

    def static_class(self) -> str:
        """The class used to type the access (declared class of the call)."""
        return self.as_class or self.oid.class_name

    def target_oids(self, store: ObjectStore) -> tuple[OID, ...]:
        """The instances this operation touches directly."""
        return (self.oid,)

    def describe(self) -> str:
        """One-line human description."""
        return f"send {self.method} to instance {self.oid}"


@dataclass(frozen=True)
class ExtentCall:
    """Send ``method`` to every proper instance of one class (access kind ii)."""

    class_name: str
    method: str
    arguments: tuple[Any, ...] = ()

    def static_class(self) -> str:
        """The class used to type the access."""
        return self.class_name

    def target_oids(self, store: ObjectStore) -> tuple[OID, ...]:
        """The instances this operation touches directly."""
        return store.extent(self.class_name)

    def describe(self) -> str:
        """One-line human description."""
        return f"send {self.method} to the extent of class {self.class_name}"


@dataclass(frozen=True)
class DomainSomeCall:
    """Send ``method`` to chosen instances across a domain (access kind iii).

    ``oids`` are the instances actually used; they may belong to the root
    class or to any of its subclasses.
    """

    class_name: str
    method: str
    oids: tuple[OID, ...]
    arguments: tuple[Any, ...] = ()

    def static_class(self) -> str:
        """The class used to type the access (the domain root)."""
        return self.class_name

    def target_oids(self, store: ObjectStore) -> tuple[OID, ...]:
        """The instances this operation touches directly."""
        return self.oids

    def describe(self) -> str:
        """One-line human description."""
        return (f"send {self.method} to {len(self.oids)} instance(s) of the domain "
                f"rooted at {self.class_name}")


@dataclass(frozen=True)
class DomainAllCall:
    """Send ``method`` to every instance of a whole domain (access kind iv)."""

    class_name: str
    method: str
    arguments: tuple[Any, ...] = ()

    def static_class(self) -> str:
        """The class used to type the access (the domain root)."""
        return self.class_name

    def target_oids(self, store: ObjectStore) -> tuple[OID, ...]:
        """The instances this operation touches directly."""
        return store.domain_extent(self.class_name)

    def describe(self) -> str:
        """One-line human description."""
        return f"send {self.method} to all instances of the domain rooted at {self.class_name}"


#: Union of all operation types.
Operation = Union[MethodCall, ExtentCall, DomainSomeCall, DomainAllCall]
