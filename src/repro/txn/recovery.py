"""Recovery: undo logging driven by access vectors.

The paper points out (§3) that access vectors double as *projection patterns*
for recovery: the fields an operation may write — the ``Write`` entries of
its transitive access vector — are exactly the fields whose before-image must
be saved, and no inverse operation has to be supplied by the programmer.

:class:`RecoveryManager` implements that idea: before an operation executes,
the transaction manager asks it to log the projection of every target
instance; on abort the saved values are written back in reverse order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.objects.oid import OID
from repro.objects.store import ObjectStore


@dataclass(frozen=True)
class UndoRecord:
    """The before-image of (a projection of) one instance."""

    txn: int
    oid: OID
    values: Mapping[str, Any]

    def fields(self) -> tuple[str, ...]:
        """The projected field names."""
        return tuple(self.values)


class RecoveryManager:
    """Keeps per-transaction undo logs of projected before-images."""

    def __init__(self, store: ObjectStore) -> None:
        self._store = store
        self._logs: dict[int, list[UndoRecord]] = {}

    def log_before_image(self, txn: int, oid: OID, fields: Iterable[str]) -> UndoRecord | None:
        """Save the current values of ``fields`` of ``oid`` for transaction ``txn``.

        An empty projection (the operation writes nothing on this instance)
        produces no record.  Saving the same instance twice keeps both
        records; undo replays them in reverse order so the oldest image wins,
        which is what strict undo semantics require.
        """
        projected = tuple(fields)
        if not projected:
            return None
        instance = self._store.get(oid)
        record = UndoRecord(txn=txn, oid=oid,
                            values={name: instance.get(name) for name in projected})
        self._logs.setdefault(txn, []).append(record)
        return record

    def undo(self, txn: int) -> int:
        """Restore every before-image of ``txn`` (newest first).

        Returns the number of records undone.  Instances deleted since the
        image was taken are skipped.
        """
        records = self._logs.pop(txn, [])
        for record in reversed(records):
            if record.oid in self._store:
                self._store.get(record.oid).restore(record.values)
        return len(records)

    def forget(self, txn: int) -> None:
        """Drop the undo log of a committed transaction."""
        self._logs.pop(txn, None)

    def log_of(self, txn: int) -> tuple[UndoRecord, ...]:
        """The undo records of ``txn``, oldest first."""
        return tuple(self._logs.get(txn, ()))

    def has_log(self, txn: int) -> bool:
        """Whether ``txn`` has logged any before-image here."""
        return bool(self._logs.get(txn))

    def pending_transactions(self) -> tuple[int, ...]:
        """Transactions that still have an undo log."""
        return tuple(self._logs)
