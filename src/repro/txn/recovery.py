"""Recovery: undo logging driven by access vectors.

The paper points out (§3) that access vectors double as *projection patterns*
for recovery: the fields an operation may write — the ``Write`` entries of
its transitive access vector — are exactly the fields whose before-image must
be saved, and no inverse operation has to be supplied by the programmer.

:class:`RecoveryManager` implements that idea: before an operation executes,
the transaction manager asks it to log the projection of every target
instance; on abort the saved values are written back in reverse order.

When constructed with a :class:`~repro.wal.log.WriteAheadLog`, every
before-image is *also* appended to the log — write-through, and atomically
with the in-memory bookkeeping (both happen under the WAL's append mutex) —
before the caller performs the store write it covers.  That ordering is the
write-ahead rule the fuzzy checkpointer depends on: a snapshot can never
contain a dirty field whose pre-state is not already out of user space, and
a transaction whose records are on disk is always visible in
:meth:`pending_transactions` to the checkpointer deciding what to carry
forward.

Log life cycle: :meth:`undo` and :meth:`forget` *finish* a transaction's log
and are idempotent; appending to a finished log raises — a late writer used
to be able to silently grow a log nobody would ever undo.  The one caller
that legitimately reuses a transaction id after an abort (the simulator's
restart-with-same-id policy) declares it with :meth:`reopen`.
"""

from __future__ import annotations

import contextlib
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from repro.errors import TransactionError
from repro.objects.oid import OID
from repro.objects.store import ObjectStore

if TYPE_CHECKING:  # pragma: no cover - typing only, keeps wal optional
    from repro.wal.log import WriteAheadLog


@dataclass(frozen=True)
class UndoRecord:
    """The before-image of (a projection of) one instance."""

    txn: int
    oid: OID
    values: Mapping[str, Any]

    def fields(self) -> tuple[str, ...]:
        """The projected field names."""
        return tuple(self.values)


class FinishedTransactions:
    """A bounded record of which transaction ids have finished.

    Ids are allocated from a monotone counter and transactions finish within
    a bounded window of their allocation, so membership compresses to a
    *floor* — every id at or below it is finished — plus a small sparse set
    of finished ids above it (ids that overtook slower predecessors) and a
    set of ids at or below it that were deliberately reopened (the
    simulator's restart-with-same-id policy).  Both side sets shrink back as
    the window moves, so memory stays proportional to the number of
    *concurrently live* transactions, not to the total ever run — a plain
    ever-growing set would leak roughly a machine word per transaction for
    the life of the engine.

    Thread safety: all three fields mutate together under one lock; reads
    take it too, so a membership test never observes a half-advanced floor.
    """

    def __init__(self) -> None:
        self._floor = 0
        self._above: set[int] = set()
        self._reopened: set[int] = set()
        self._mutex = threading.Lock()

    def add(self, txn: int) -> None:
        """Mark ``txn`` finished (idempotent)."""
        with self._mutex:
            if txn <= self._floor:
                self._reopened.discard(txn)
                return
            self._above.add(txn)
            while self._floor + 1 in self._above:
                self._floor += 1
                self._above.discard(self._floor)

    def remove(self, txn: int) -> None:
        """Mark ``txn`` live again (see :meth:`RecoveryManager.reopen`)."""
        with self._mutex:
            if txn <= self._floor:
                self._reopened.add(txn)
            else:
                self._above.discard(txn)

    def __contains__(self, txn: int) -> bool:
        with self._mutex:
            if txn <= self._floor:
                return txn not in self._reopened
            return txn in self._above


class RecoveryManager:
    """Keeps per-transaction undo logs of projected before-images."""

    def __init__(self, store: ObjectStore,
                 wal: "WriteAheadLog | None" = None, *,
                 track_finished: bool = True) -> None:
        self._store = store
        self._wal = wal
        self._logs: dict[int, list[UndoRecord]] = {}
        #: Transactions whose log was released by :meth:`undo`/:meth:`forget`.
        #: Appending for them raises; undoing them again is a no-op.
        #: ``track_finished=False`` drops the bookkeeping entirely — the
        #: sharded front runs its per-shard managers that way, because a
        #: shard only ever hears about the transactions that touched it (the
        #: floor of :class:`FinishedTransactions` could never advance there)
        #: and the front enforces one engine-wide seal instead.
        self._finished: FinishedTransactions | None = (
            FinishedTransactions() if track_finished else None)

    def log_before_image(self, txn: int, oid: OID, fields: Iterable[str]) -> UndoRecord | None:
        """Save the current values of ``fields`` of ``oid`` for transaction ``txn``.

        An empty projection (the operation writes nothing on this instance)
        produces no record.  Saving the same instance twice keeps both
        records; undo replays them in reverse order so the oldest image wins,
        which is what strict undo semantics require.

        With a write-ahead log attached, the before-image is appended to it
        (write-through) before this method returns — i.e. before the caller
        can perform the write the image covers — and atomically with the
        in-memory log growth, so a concurrent checkpointer always sees the
        two agree.

        Raises:
            TransactionError: ``txn`` already finished here; its log must
                not grow again (see :meth:`reopen` for deliberate id reuse).
        """
        if self._finished is not None and txn in self._finished:
            raise TransactionError(
                f"transaction {txn} already finished; its undo log was "
                "released and cannot be appended to")
        projected = tuple(fields)
        if not projected:
            return None
        instance = self._store.get(oid)
        record = UndoRecord(txn=txn, oid=oid,
                            values={name: instance.get(name) for name in projected})
        with self._wal.mutex if self._wal is not None else contextlib.nullcontext():
            if self._wal is not None:
                from repro.wal.records import UndoImage

                self._wal.append(UndoImage(txn=txn, oid=oid, values=record.values))
            self._logs.setdefault(txn, []).append(record)
        return record

    def undo(self, txn: int) -> int:
        """Restore every before-image of ``txn`` (newest first).  Idempotent.

        Returns the number of records undone (0 when the transaction already
        finished).  Instances deleted since the image was taken are skipped.
        The restore happens *before* the log is dropped, so a concurrent
        checkpointer that still sees the log knows the shard may hold
        partially-restored values and carries the records forward.
        """
        if self._finished is not None and txn in self._finished:
            return 0
        records = self._logs.get(txn, ())
        for record in reversed(records):
            if record.oid in self._store:
                self._store.get(record.oid).restore(record.values)
        self._logs.pop(txn, None)
        if self._finished is not None:
            self._finished.add(txn)
        return len(records)

    def forget(self, txn: int) -> None:
        """Drop the undo log of a committed transaction.  Idempotent."""
        self._logs.pop(txn, None)
        if self._finished is not None:
            self._finished.add(txn)

    def reopen(self, txn: int) -> None:
        """Allow a finished transaction id to log again.

        Exists for the simulator's restart policy, where an aborted victim's
        new incarnation deliberately keeps its transaction id; everything
        else should treat a finished log as sealed.
        """
        if self._finished is not None:
            self._finished.remove(txn)

    def is_finished(self, txn: int) -> bool:
        """Whether ``txn``'s log was released by :meth:`undo`/:meth:`forget`."""
        return self._finished is not None and txn in self._finished

    def redo_images(self, txn: int) -> list[tuple[OID, dict[str, Any]]]:
        """Current values of every projection ``txn`` logged here.

        Called by a 2PC participant at *prepare* time, when strict two-phase
        locking guarantees these are the transaction's final values for the
        projected fields — the after-images its redo records need.  Deleted
        instances are skipped, mirroring :meth:`undo`.
        """
        images: list[tuple[OID, dict[str, Any]]] = []
        for record in self._logs.get(txn, ()):
            if record.oid in self._store:
                instance = self._store.get(record.oid)
                images.append((record.oid,
                               {name: instance.get(name) for name in record.fields()}))
        return images

    def log_of(self, txn: int) -> tuple[UndoRecord, ...]:
        """The undo records of ``txn``, oldest first."""
        return tuple(self._logs.get(txn, ()))

    def has_log(self, txn: int) -> bool:
        """Whether ``txn`` has logged any before-image here."""
        return bool(self._logs.get(txn))

    def pending_transactions(self) -> tuple[int, ...]:
        """Transactions that still have an undo log.

        Safe against concurrent finishers: committing/aborting threads may
        pop entries while this iterates (appends are excluded by the WAL
        mutex during a checkpoint, but pops never are), so the snapshot
        retries on the rare mutation-during-iteration failure.
        """
        while True:
            try:
                return tuple(self._logs)
            except RuntimeError:  # pragma: no cover - needs an exact interleaving
                continue

    @property
    def wal(self) -> "WriteAheadLog | None":
        """The write-ahead log before-images are appended to, if any."""
        return self._wal
