"""Memoized lock plans for structural operations.

The compile-time analysis makes most lock plans *structural*: for the TAV
and relational protocols, an operation with no external sends yields a plan
that is a pure function of (operation kind, target, method, argument shape)
— the TAV projections and resolution-graph walks performed by ``plan()``
rediscover the same answer on every call.  :class:`PlanCache` memoizes those
plans so the steady-state hot path is a dict hit.

Cacheability is decided by the protocol itself through
:meth:`~repro.txn.protocols.base.ConcurrencyControlProtocol.plan_cache_key`:
``None`` (the default, and always the answer for the shadow-run protocols)
bypasses the cache.  Extent and domain plans embed store extents in their
receiver lists, so the cache must be invalidated whenever the instance
population or the schema changes — the engine calls :meth:`PlanCache.invalidate`
from ``create_instance``/``delete_instance`` and the invalidation hook is
public for schema/protocol changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.txn.operations import Operation
    from repro.txn.protocols.base import ConcurrencyControlProtocol, LockPlan


@dataclass
class PlanCacheStats:
    """Counters accumulated by one plan cache."""

    hits: int = 0
    misses: int = 0
    #: Operations whose protocol declared the plan data-dependent.
    uncacheable: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        """Cacheable lookups (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of cacheable lookups answered from the cache."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def reset(self) -> None:
        """Zero every counter."""
        self.hits = 0
        self.misses = 0
        self.uncacheable = 0
        self.invalidations = 0

    def as_dict(self) -> dict[str, float]:
        """Counters plus the derived hit rate, for metrics snapshots."""
        return {"plan_cache_hits": self.hits,
                "plan_cache_misses": self.misses,
                "plan_cache_uncacheable": self.uncacheable,
                "plan_cache_hit_rate": round(self.hit_rate, 4)}


class PlanCache:
    """Per-protocol memo of structural lock plans.

    ``LockPlan`` is a frozen dataclass of tuples, so one cached plan can be
    shared by every transaction that performs the same structural operation.
    """

    def __init__(self, protocol: "ConcurrencyControlProtocol",
                 max_entries: int = 4096) -> None:
        self._protocol = protocol
        self._plans: dict[Hashable, "LockPlan"] = {}
        self._max_entries = max_entries
        self.stats = PlanCacheStats()

    def plan(self, operation: "Operation") -> tuple["LockPlan", bool]:
        """The plan for ``operation`` plus whether it came from the cache."""
        key = self._protocol.plan_cache_key(operation)
        if key is None:
            self.stats.uncacheable += 1
            return self._protocol.plan(operation), False
        cached = self._plans.get(key)
        if cached is not None:
            self.stats.hits += 1
            return cached, True
        self.stats.misses += 1
        plan = self._protocol.plan(operation)
        if len(self._plans) >= self._max_entries:
            self._plans.clear()
        self._plans[key] = plan
        return plan, False

    def invalidate(self) -> None:
        """Drop every cached plan (schema, protocol or population change)."""
        self._plans.clear()
        self.stats.invalidations += 1

    def __len__(self) -> int:
        return len(self._plans)

    @property
    def protocol(self) -> "ConcurrencyControlProtocol":
        """The protocol whose plans this cache memoizes."""
        return self._protocol
