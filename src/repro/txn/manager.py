"""The transaction manager: strict two-phase locking over a protocol.

The manager is deliberately *non-blocking*: when a lock cannot be granted it
raises :class:`~repro.errors.LockConflictError` immediately instead of
waiting, which is the right behaviour for a single-threaded, interactive use
of the library (the examples) — a caller can catch the conflict, abort or try
something else.  Workloads that need blocking, waiting and deadlock handling
run through :class:`repro.sim.simulator.Simulator`, which drives the same
protocol and lock-manager machinery on a simulated timeline.
"""

from __future__ import annotations

import contextlib
import itertools
from typing import Any, Callable, Mapping

from repro.analysis.sanitizer import (
    SanitizedStoreFront,
    Sanitizer,
    sanitize_from_env,
)
from repro.errors import TransactionError
from repro.objects.interpreter import Interpreter
from repro.objects.oid import OID
from repro.txn.operations import (
    DomainAllCall,
    DomainSomeCall,
    ExtentCall,
    MethodCall,
    Operation,
)
from repro.txn.protocols.base import ConcurrencyControlProtocol
from repro.txn.recovery import RecoveryManager
from repro.txn.transaction import Transaction, TransactionState


class TransactionManager:
    """Runs transactions under strict two-phase locking."""

    def __init__(self, protocol: ConcurrencyControlProtocol,
                 builtins: Mapping[str, Callable[..., Any]] | None = None,
                 sanitize: bool | None = None) -> None:
        self._protocol = protocol
        self._store = protocol.store
        self._locks = protocol.create_lock_manager()
        self._recovery = RecoveryManager(self._store)
        if sanitize is None:
            sanitize = sanitize_from_env()
        self._sanitizer: Sanitizer | None = (
            Sanitizer(protocol) if sanitize else None)
        interpreter_store: Any = self._store
        if self._sanitizer is not None:
            interpreter_store = SanitizedStoreFront(self._store,
                                                    self._sanitizer)
        self._interpreter = Interpreter(interpreter_store, builtins=builtins)
        self._transactions: dict[int, Transaction] = {}
        self._ids = itertools.count(1)

    # -- life cycle ---------------------------------------------------------------

    def begin(self) -> Transaction:
        """Start a new transaction."""
        transaction = Transaction(txn_id=next(self._ids))
        self._transactions[transaction.txn_id] = transaction
        return transaction

    def commit(self, transaction: Transaction) -> None:
        """Commit: discard the undo log, mark committed, release every lock.

        The state flips *before* the locks are released (same ordering as the
        threaded engine's commit): a transaction must never be observable as
        ACTIVE while its writes are already unprotected.
        """
        transaction.ensure_active()
        self._recovery.forget(transaction.txn_id)
        transaction.state = TransactionState.COMMITTED
        if self._sanitizer is not None:
            self._sanitizer.note_release(transaction.txn_id)
        self._locks.release_all(transaction.txn_id)

    def abort(self, transaction: Transaction) -> None:
        """Abort: undo every write from the before-images, then release locks."""
        if transaction.is_finished:
            raise TransactionError(f"{transaction} is already finished")
        self._recovery.undo(transaction.txn_id)
        transaction.state = TransactionState.ABORTED
        if self._sanitizer is not None:
            self._sanitizer.note_release(transaction.txn_id)
        self._locks.release_all(transaction.txn_id)

    # -- operations ----------------------------------------------------------------

    def perform(self, transaction: Transaction, operation: Operation) -> list[Any]:
        """Plan, lock, log before-images and execute ``operation``.

        Raises:
            LockConflictError: if a needed lock is held incompatibly by
                another transaction.  The transaction keeps the locks it
                already holds (strict 2PL) and stays active; the caller
                decides whether to retry or abort.
        """
        transaction.ensure_active()
        plan = self._protocol.plan(operation)
        for request in plan.requests:
            transaction.stats.lock_requests += 1
            self._locks.acquire(transaction.txn_id, request.resource, request.mode)
            if self._sanitizer is not None:
                self._sanitizer.note_acquire(transaction.txn_id,
                                             request.resource, request.mode)
        transaction.stats.control_points += plan.control_points
        transaction.stats.operations += 1
        projections = self._protocol.undo_projections(plan)
        for oid, fields in projections:
            self._recovery.log_before_image(transaction.txn_id, oid, fields)
        if self._sanitizer is not None:
            self._sanitizer.note_images(transaction.txn_id, projections)
            scope: Any = self._sanitizer.operation_scope(
                transaction.txn_id, plan)
        else:
            scope = contextlib.nullcontext()
        with scope:
            results = self._protocol.execute(operation, self._interpreter)
        transaction.executed.append(operation)
        transaction.results.extend(results)
        return results

    # -- convenience wrappers (the public API used by examples) ----------------------

    def call(self, transaction: Transaction, oid: OID, method: str,
             *arguments: Any, as_class: str | None = None) -> Any:
        """Send ``method`` to one instance within ``transaction``."""
        results = self.perform(transaction, MethodCall(
            oid=oid, method=method, arguments=tuple(arguments), as_class=as_class))
        return results[0] if results else None

    def call_extent(self, transaction: Transaction, class_name: str, method: str,
                    *arguments: Any) -> list[Any]:
        """Send ``method`` to every proper instance of ``class_name``."""
        return self.perform(transaction, ExtentCall(
            class_name=class_name, method=method, arguments=tuple(arguments)))

    def call_domain(self, transaction: Transaction, class_name: str, method: str,
                    *arguments: Any) -> list[Any]:
        """Send ``method`` to every instance of the domain rooted at ``class_name``."""
        return self.perform(transaction, DomainAllCall(
            class_name=class_name, method=method, arguments=tuple(arguments)))

    def call_some(self, transaction: Transaction, class_name: str, method: str,
                  oids: tuple[OID, ...], *arguments: Any) -> list[Any]:
        """Send ``method`` to chosen instances of the domain rooted at ``class_name``."""
        return self.perform(transaction, DomainSomeCall(
            class_name=class_name, method=method, oids=tuple(oids),
            arguments=tuple(arguments)))

    # -- introspection -----------------------------------------------------------------

    @property
    def protocol(self) -> ConcurrencyControlProtocol:
        """The concurrency-control protocol in use."""
        return self._protocol

    @property
    def lock_manager(self):
        """The underlying lock manager (for inspection and tests)."""
        return self._locks

    @property
    def recovery(self) -> RecoveryManager:
        """The recovery manager (undo logs)."""
        return self._recovery

    @property
    def interpreter(self) -> Interpreter:
        """The interpreter executing method bodies."""
        return self._interpreter

    @property
    def sanitizer(self) -> Sanitizer | None:
        """The runtime sanitizer when sanitized execution is on, else ``None``."""
        return self._sanitizer

    def transaction(self, txn_id: int) -> Transaction:
        """Look up a transaction by identifier."""
        try:
            return self._transactions[txn_id]
        except KeyError:
            raise TransactionError(f"unknown transaction {txn_id}") from None

    def active_transactions(self) -> tuple[Transaction, ...]:
        """Transactions that are neither committed nor aborted."""
        return tuple(t for t in self._transactions.values() if not t.is_finished)
