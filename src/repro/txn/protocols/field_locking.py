"""Run-time field locking (Agrawal & El Abbadi [1], discussed in §6).

The scheme associates with every class a method set and a field set; when a
message is sent the activated method is registered, then *each field accessed
by the method is locked individually, at run time, at the moment of access*.
The granularity is the finest possible — the field of one instance — so it is
**less conservative** than the paper's transitive access vectors (only fields
actually touched by the execution are locked), but:

* every field access pays a concurrency-control call (high run-time
  overhead),
* the problems of multiple controls per instance and of escalation-induced
  deadlocks remain (§6).

This implementation locks ``(instance, field)`` pairs in ``R``/``W`` mode and
keeps intention locks on the instance and its class so that extent-level
operations are still correctly synchronised.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.modes import AccessMode
from repro.errors import UnknownModeError
from repro.locking.modes import (
    intention_of,
    multigranularity_compatible,
    rw_compatible,
)
from repro.objects.interpreter import AccessEvent, MessageEvent
from repro.objects.oid import OID
from repro.txn.operations import Operation
from repro.txn.protocols.base import ConcurrencyControlProtocol, LockPlan, LockRequestSpec


class FieldLockingProtocol(ConcurrencyControlProtocol):
    """Per-access field locks acquired at run time."""

    name = "field-locking"
    description = ("run-time locks on individual fields of individual instances; "
                   "finest granularity, one control per access")

    # -- compatibility -----------------------------------------------------------

    def compatible(self, resource: Hashable, held: Hashable, requested: Hashable) -> bool:
        kind = resource[0]
        if kind == "field":
            return rw_compatible(held, requested)
        if kind in ("instance", "class"):
            return multigranularity_compatible(held, requested)
        raise UnknownModeError(
            f"the field-locking protocol does not lock {kind!r} resources")

    # -- planning -------------------------------------------------------------------

    def plan(self, operation: Operation) -> LockPlan:
        trace = self._shadow_trace(operation)
        requests: list[LockRequestSpec] = []
        receivers: list[tuple[OID, str]] = []
        written: dict[OID, dict[str, None]] = {}
        control_points = 0

        for event in trace.events:
            if isinstance(event, MessageEvent):
                control_points += 1
                mode = self._classify_message(event)
                requests.append(LockRequestSpec(
                    resource=("class", event.oid.class_name), mode=intention_of(mode),
                    note=f"class intention for {event.method}"))
                requests.append(LockRequestSpec(
                    resource=("instance", event.oid), mode=intention_of(mode),
                    note=f"instance intention for {event.method}"))
                if event.is_entry:
                    receivers.append((event.oid, event.method))
            elif isinstance(event, AccessEvent):
                control_points += 1
                mode = "W" if event.mode is AccessMode.WRITE else "R"
                requests.append(LockRequestSpec(
                    resource=("field", event.oid, event.field), mode=mode,
                    note="field access"))
                if event.mode is AccessMode.WRITE:
                    written.setdefault(event.oid, {})[event.field] = None

        # The scheme locks exactly the fields the execution path touches, so
        # the undo projection must be the *written part of that path*, not
        # the conservative TAV projection — restoring an unlocked TAV field
        # on abort would clobber concurrent committed writes.
        projections = tuple((oid, tuple(fields)) for oid, fields in written.items())
        return LockPlan(requests=tuple(requests), control_points=control_points,
                        receivers=tuple(receivers), undo_projections=projections)

    # -- helpers --------------------------------------------------------------------

    def _classify_message(self, event: MessageEvent) -> str:
        # Classify from the resolved class: that is whose body executes (a
        # prefixed super-send may write even when the override's own
        # statements only read).
        compiled = self._compiled.compiled_class(event.resolved_class)
        return self.classify(compiled.analyses[event.method].dav.top_mode)
