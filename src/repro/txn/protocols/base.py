"""Base class and shared data structures for concurrency-control protocols."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Mapping

from repro.core.compiler import CompiledSchema
from repro.core.modes import AccessMode
from repro.locking.manager import LockManager
from repro.locking.modes import escrow_compatible
from repro.objects.interpreter import ExecutionTrace, Interpreter, MessageEvent
from repro.objects.oid import OID
from repro.objects.shadow import ShadowStore
from repro.objects.store import ObjectStore
from repro.schema import Schema
from repro.txn.operations import (
    DomainAllCall,
    DomainSomeCall,
    ExtentCall,
    MethodCall,
    Operation,
)


@dataclass(frozen=True)
class LockRequestSpec:
    """One lock a protocol wants, in acquisition order within the plan."""

    resource: Hashable
    mode: Hashable
    note: str = ""


@dataclass(frozen=True)
class LockPlan:
    """The locks an operation needs plus planning metadata.

    Attributes:
        requests: the lock requests, in the order they must be acquired.
        control_points: how many times the protocol invokes concurrency
            control for this operation (the §3 "locking overhead" metric —
            one per instance for the paper's scheme, one per message for the
            read/write baseline, one per access for field locking).
        receivers: ``(oid, entry method)`` pairs of the instances the
            operation may write; the recovery manager snapshots the
            written-field projection of each before execution.
        undo_projections: optional explicit ``(oid, fields)`` before-image
            projections.  ``None`` means "derive from ``receivers`` via the
            transitive access vectors" (the §3 recovery use), which is
            correct whenever the protocol's locks cover the whole TAV
            footprint.  A *path-sensitive* protocol such as field locking
            locks only the fields the actual execution path touches, so its
            undo must be restricted to the same footprint: restoring a
            TAV-projected field the transaction never locked would overwrite
            concurrent committed writes of that field.
    """

    requests: tuple[LockRequestSpec, ...]
    control_points: int
    receivers: tuple[tuple[OID, str], ...] = ()
    undo_projections: tuple[tuple[OID, tuple[str, ...]], ...] | None = None

    def __len__(self) -> int:
        return len(self.requests)

    def resources(self) -> tuple[Hashable, ...]:
        """The distinct resources named by the plan, in first-use order."""
        seen: dict[Hashable, None] = {}
        for request in self.requests:
            seen.setdefault(request.resource, None)
        return tuple(seen)


class ConcurrencyControlProtocol(abc.ABC):
    """Common machinery for all protocols.

    A protocol is constructed for one compiled schema and one store.  It is
    stateless with respect to transactions — all state lives in the lock
    manager and the transaction manager — so one protocol instance can serve
    many transactions and many simulations.
    """

    #: Short identifier used in benchmark output (overridden by subclasses).
    name: str = "abstract"
    #: Human description used by reports.
    description: str = ""

    def __init__(self, compiled: CompiledSchema, store: ObjectStore,
                 builtins: Mapping[str, Callable[..., Any]] | None = None) -> None:
        self._compiled = compiled
        self._store = store
        self._schema: Schema = compiled.schema
        self._builtins = dict(builtins) if builtins else None

    # -- to implement -----------------------------------------------------------

    @abc.abstractmethod
    def compatible(self, resource: Hashable, held: Hashable, requested: Hashable) -> bool:
        """Whether two lock modes on ``resource`` are compatible."""

    @abc.abstractmethod
    def plan(self, operation: Operation) -> LockPlan:
        """The locks ``operation`` needs, given the current store contents."""

    # -- provided ----------------------------------------------------------------

    def plan_cache_key(self, operation: Operation) -> Hashable | None:
        """A memoization key for ``operation``'s plan, or ``None``.

        ``None`` means the plan is data-dependent (derived from a shadow run
        of the actual arguments) and must not be cached.  Protocols whose
        plans are purely structural — a function of (operation kind, class,
        method) only — override this to return a hashable key.
        """
        return None

    def _structural_cache_key(self, operation: Operation) -> Hashable | None:
        """The shared cache key for protocols with structural plans.

        Valid only when the operation has no external sends: then the plan
        never looks at argument *values*, so (kind, target, method, argument
        shape) identifies it.  Extent and domain plans still embed store
        extents in their receivers, which is why the engine invalidates the
        cache on instance creation/deletion.
        """
        if self._needs_shadow_run(operation):
            return None
        shape = tuple(type(argument).__name__ for argument in operation.arguments)
        if isinstance(operation, MethodCall):
            return ("method", operation.oid, operation.method,
                    operation.as_class, shape)
        if isinstance(operation, ExtentCall):
            return ("extent", operation.class_name, operation.method, shape)
        if isinstance(operation, DomainSomeCall):
            return ("domain-some", operation.class_name, operation.method,
                    operation.oids, shape)
        if isinstance(operation, DomainAllCall):
            return ("domain-all", operation.class_name, operation.method, shape)
        return None

    def create_lock_manager(self) -> LockManager:
        """A lock manager wired to this protocol's compatibility function.

        The protocol's table is wrapped with the escrow overlay: two escrow
        modes always commute, an escrow mode conflicts with every ordinary
        mode, and ordinary pairs fall through to :meth:`compatible`.
        """
        return LockManager(self._escrow_aware_compatible)

    def _escrow_aware_compatible(self, resource: Hashable, held: Hashable,
                                 requested: Hashable) -> bool:
        overlay = escrow_compatible(held, requested)
        if overlay is not None:
            return overlay
        return self.compatible(resource, held, requested)

    def execute(self, operation: Operation, interpreter: Interpreter,
                trace: ExecutionTrace | None = None) -> list[Any]:
        """Really execute ``operation`` (no locking — the caller handles it)."""
        results = []
        for oid in operation.target_oids(self._store):
            results.append(interpreter.send(oid, operation.method,
                                            *operation.arguments, trace=trace))
        return results

    def written_projection(self, oid: OID, method: str) -> tuple[str, ...]:
        """Fields of ``oid`` that ``method`` may write (undo projection).

        This is the recovery use of access vectors described in §3: the
        ``Write`` entries of the transitive access vector.
        """
        compiled = self._compiled.compiled_class(oid.class_name)
        return compiled.tav(method).written_fields

    def undo_projections(self, plan: LockPlan) -> tuple[tuple[OID, tuple[str, ...]], ...]:
        """The before-image projections a transaction manager must log.

        Uses the plan's explicit projections when the protocol supplied them
        (path-sensitive protocols know exactly what the execution writes);
        otherwise falls back to the transitive-access-vector projection of
        every receiver.
        """
        if plan.undo_projections is not None:
            return plan.undo_projections
        return tuple((oid, self.written_projection(oid, method))
                     for oid, method in plan.receivers)

    @property
    def compiled(self) -> CompiledSchema:
        """The compiled schema this protocol was built for."""
        return self._compiled

    @property
    def store(self) -> ObjectStore:
        """The store this protocol plans against."""
        return self._store

    # -- shared planning helpers ---------------------------------------------------

    def _shadow_trace(self, operation: Operation) -> ExecutionTrace:
        """Dry-run the operation on a copy-on-write view and return its trace."""
        shadow = ShadowStore(self._store)
        interpreter = Interpreter(shadow, builtins=self._builtins)  # type: ignore[arg-type]
        trace = ExecutionTrace()
        for oid in operation.target_oids(self._store):
            interpreter.send(oid, operation.method, *operation.arguments, trace=trace)
        return trace

    def _external_entries(self, operation: Operation,
                          trace: ExecutionTrace) -> tuple[MessageEvent, ...]:
        """Entry messages of the trace that land outside the operation's targets."""
        direct = set(operation.target_oids(self._store))
        return tuple(event for event in trace.entry_messages if event.oid not in direct)

    def _needs_shadow_run(self, operation: Operation) -> bool:
        """Whether the operation's method may reach other instances."""
        class_names: set[str] = set()
        if isinstance(operation, MethodCall):
            class_names.add(operation.oid.class_name)
        elif isinstance(operation, ExtentCall):
            class_names.add(operation.class_name)
        elif isinstance(operation, (DomainSomeCall, DomainAllCall)):
            class_names.update(self._schema.domain(operation.class_name))
        for class_name in class_names:
            compiled = self._compiled.compiled_class(class_name)
            if operation.method in compiled.methods and \
                    compiled.has_external_sends(operation.method):
                return True
        return False

    @staticmethod
    def classify(vector_top_mode: AccessMode) -> str:
        """Map an access-vector top mode onto a plain ``"R"``/``"W"`` mode."""
        return "W" if vector_top_mode is AccessMode.WRITE else "R"
