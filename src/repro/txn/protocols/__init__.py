"""Concurrency-control protocols.

Every protocol turns an :class:`~repro.txn.operations.Operation` into a
:class:`~repro.txn.protocols.base.LockPlan` (the ordered lock requests it
needs) and supplies the compatibility function its lock modes obey.  The
available protocols:

* :class:`~repro.txn.protocols.tav.TAVProtocol` — the paper's scheme:
  per-method access modes derived from transitive access vectors, one control
  per instance, explicit class locks ``(mode, hierarchical?)``.
* :class:`~repro.txn.protocols.rw_instance.RWInstanceProtocol` — the
  read/write instance-locking baseline with one control per message
  (the situation criticised in §3).
* :class:`~repro.txn.protocols.rw_hierarchy.RWHierarchyProtocol` — the same
  read/write modes with implicit hierarchy locking in the style of ORION
  [8, 17].
* :class:`~repro.txn.protocols.relational.RelationalProtocol` — the
  first-normal-form decomposition of §3: one relation per class, tuple and
  relation locks.
* :class:`~repro.txn.protocols.field_locking.FieldLockingProtocol` — the
  run-time field-locking scheme of Agrawal & El Abbadi [1] discussed in §6.
"""

from repro.txn.protocols.base import (
    ConcurrencyControlProtocol,
    LockPlan,
    LockRequestSpec,
)
from repro.txn.protocols.tav import TAVProtocol
from repro.txn.protocols.rw_instance import RWInstanceProtocol
from repro.txn.protocols.rw_hierarchy import RWHierarchyProtocol
from repro.txn.protocols.relational import RelationalProtocol
from repro.txn.protocols.field_locking import FieldLockingProtocol

#: All protocol classes keyed by their short name (used by benchmarks).
PROTOCOLS = {
    TAVProtocol.name: TAVProtocol,
    RWInstanceProtocol.name: RWInstanceProtocol,
    RWHierarchyProtocol.name: RWHierarchyProtocol,
    RelationalProtocol.name: RelationalProtocol,
    FieldLockingProtocol.name: FieldLockingProtocol,
}

__all__ = [
    "ConcurrencyControlProtocol",
    "FieldLockingProtocol",
    "LockPlan",
    "LockRequestSpec",
    "PROTOCOLS",
    "RWHierarchyProtocol",
    "RWInstanceProtocol",
    "RelationalProtocol",
    "TAVProtocol",
]
