"""The relational decomposition baseline (§3 and §5.2).

The inheritance hierarchy is mapped onto first normal form the way the paper
describes: each class ``C`` becomes a relation holding the fields *declared*
by ``C``; the key of the hierarchy's root (by default its first field, e.g.
``f1``) is the primary key of the root relation and reappears in every
subclass relation as a foreign key.  An instance of a subclass is therefore
spread over one tuple per class of its inheritance slice.

Lock granules are relations (multigranularity ``IS``/``IX``/``S``/``X``) and
tuples (``R``/``W``).  Which relations a transaction touches follows from the
fields its statement uses — in this reproduction, the transitive access
vector of the method projected onto each relation's fields, which is exactly
the "coarse access vector" reading of first normal form given after
definition 6.

Writing the key propagates: updating the primary key of a root tuple forces
the matching foreign keys in the subclass relations to be updated too, which
is why the paper's ``T1`` write-locks a tuple of ``r2`` as well (§5.2) — and
why object-oriented databases built on relational engines do not hit the
problem (OIDs play the role of keys and are never updated).  The key policy
is configurable (``"first-field"`` reproduces the paper, ``"oid"`` models the
surrogate-key design) so the paper's closing remark can be checked as an
ablation.
"""

from __future__ import annotations

from typing import Callable, Hashable, Mapping

from repro.core.access_vector import AccessVector
from repro.core.compiler import CompiledSchema
from repro.errors import UnknownModeError
from repro.locking.modes import (
    absolute_of,
    intention_of,
    multigranularity_compatible,
    rw_compatible,
)
from repro.objects.oid import OID
from repro.objects.store import ObjectStore
from repro.txn.operations import (
    DomainAllCall,
    DomainSomeCall,
    ExtentCall,
    MethodCall,
    Operation,
)
from repro.txn.protocols.base import ConcurrencyControlProtocol, LockPlan, LockRequestSpec


class RelationalProtocol(ConcurrencyControlProtocol):
    """Tuple/relation locking over the first-normal-form mapping of the schema."""

    name = "relational"
    description = ("one relation per class (first normal form), tuple and relation "
                   "locks, key fields propagated to subclass relations")

    def __init__(self, compiled: CompiledSchema, store: ObjectStore,
                 builtins: Mapping[str, Callable[..., object]] | None = None,
                 key_policy: str = "first-field") -> None:
        """``key_policy`` is ``"first-field"`` (the paper's mapping: the first
        field of each root class is the primary key) or ``"oid"`` (surrogate
        keys that no method ever updates)."""
        super().__init__(compiled, store, builtins)
        if key_policy not in ("first-field", "oid"):
            raise ValueError(f"unknown key policy {key_policy!r}")
        self._key_policy = key_policy
        # Constant per-schema pieces of the relational mapping, hoisted so
        # plan() never re-runs linearisation / descendant walks.
        class_names = self._schema.class_names
        self._relation_fields = {name: self._schema.get_class(name).field_names
                                 for name in class_names}
        self._slice_classes = {name: self._schema.linearization(name)
                               for name in class_names}
        self._key_fields = {name: self._derive_key_field(name)
                            for name in class_names}
        self._descendants = {name: self._schema.descendants(name)
                             for name in class_names}
        self._domains = {name: self._schema.domain(name) for name in class_names}

    # -- compatibility ---------------------------------------------------------------

    def compatible(self, resource: Hashable, held: Hashable, requested: Hashable) -> bool:
        kind = resource[0]
        if kind == "relation":
            return multigranularity_compatible(held, requested)
        if kind == "tuple":
            return rw_compatible(held, requested)
        raise UnknownModeError(f"the relational protocol does not lock {kind!r} resources")

    # -- the relational mapping --------------------------------------------------------

    def relation_fields(self, class_name: str) -> tuple[str, ...]:
        """The columns of the relation for ``class_name``: its declared fields."""
        return self._relation_fields[class_name]

    def key_field(self, class_name: str) -> str | None:
        """The primary-key field of the hierarchy ``class_name`` belongs to.

        Under the ``"oid"`` policy there is no user-visible key field (the
        surrogate key is never written by methods), hence ``None``.
        """
        return self._key_fields[class_name]

    def _derive_key_field(self, class_name: str) -> str | None:
        if self._key_policy == "oid":
            return None
        linearization = self._schema.linearization(class_name)
        root = linearization[-1]
        root_fields = self._schema.get_class(root).field_names
        return root_fields[0] if root_fields else None

    def slice_classes(self, class_name: str) -> tuple[str, ...]:
        """The relations an instance viewed through ``class_name`` spans."""
        return self._slice_classes[class_name]

    # -- planning -------------------------------------------------------------------------

    def plan(self, operation: Operation) -> LockPlan:
        requests: list[LockRequestSpec] = []
        receivers: list[tuple[OID, str]] = []

        if isinstance(operation, MethodCall):
            self._plan_tuple_access(operation.oid, operation.static_class(),
                                    operation.method, requests, receivers)
        elif isinstance(operation, DomainSomeCall):
            self._plan_domain_intentions(operation, requests)
            for oid in operation.oids:
                self._plan_tuple_access(oid, oid.class_name, operation.method,
                                        requests, receivers)
        elif isinstance(operation, (ExtentCall, DomainAllCall)):
            self._plan_relation_scan(operation, requests, receivers)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unsupported operation {operation!r}")

        self._plan_external_receivers(operation, requests, receivers)
        control_points = len({request.resource for request in requests
                              if request.resource[0] == "relation"})
        return LockPlan(requests=tuple(requests), control_points=control_points,
                        receivers=tuple(receivers))

    def plan_cache_key(self, operation: Operation) -> Hashable | None:
        """Relational plans are structural when the method has no external sends."""
        return self._structural_cache_key(operation)

    # -- helpers -----------------------------------------------------------------------------

    def _method_tav(self, class_name: str, method: str) -> AccessVector | None:
        compiled = self._compiled.compiled_class(class_name)
        if method not in compiled.methods:
            return None
        return compiled.tav(method)

    def _plan_tuple_access(self, oid: OID, static_class: str, method: str,
                           requests: list[LockRequestSpec],
                           receivers: list[tuple[OID, str]]) -> None:
        """Tuple + relation intention locks for one instance access."""
        lookup_class = static_class if \
            self._method_tav(static_class, method) is not None else oid.class_name
        tav = self._method_tav(lookup_class, method)
        if tav is None:
            return
        receivers.append((oid, method))
        for relation in self.slice_classes(lookup_class):
            projection = tav.restricted(self.relation_fields(relation))
            if projection.is_null:
                continue
            mode = self.classify(projection.top_mode)
            requests.append(LockRequestSpec(
                resource=("relation", relation), mode=intention_of(mode),
                note=f"intention for {method}"))
            requests.append(LockRequestSpec(
                resource=("tuple", relation, oid), mode=mode,
                note=f"tuple of {relation}"))
        self._plan_key_cascade(oid, lookup_class, tav, hierarchical=False,
                               requests=requests)

    def _plan_relation_scan(self, operation: ExtentCall | DomainAllCall,
                            requests: list[LockRequestSpec],
                            receivers: list[tuple[OID, str]]) -> None:
        """Whole-relation locks for extent and domain scans."""
        if isinstance(operation, ExtentCall):
            covered = (operation.class_name,)
        else:
            covered = self._domains[operation.class_name]
        relation_modes: dict[str, str] = {}
        cascade_write = False
        for class_name in covered:
            tav = self._method_tav(class_name, operation.method)
            if tav is None:
                continue
            key = self.key_field(class_name)
            if key is not None and key in tav.written_fields:
                cascade_write = True
            for relation in self.slice_classes(class_name):
                projection = tav.restricted(self.relation_fields(relation))
                if projection.is_null:
                    continue
                mode = self.classify(projection.top_mode)
                current = relation_modes.get(relation)
                if current is None:
                    relation_modes[relation] = mode
                elif "W" in (current, mode):
                    relation_modes[relation] = "W"
        if cascade_write:
            for class_name in covered:
                for descendant in self._descendants[class_name]:
                    relation_modes[descendant] = "W"
        for relation, mode in relation_modes.items():
            requests.append(LockRequestSpec(
                resource=("relation", relation), mode=absolute_of(mode),
                note=f"scan for {operation.method}"))
        for oid in operation.target_oids(self._store):
            receivers.append((oid, operation.method))

    def _plan_domain_intentions(self, operation: DomainSomeCall,
                                requests: list[LockRequestSpec]) -> None:
        for class_name in self._domains[operation.class_name]:
            tav = self._method_tav(class_name, operation.method)
            if tav is None:
                continue
            for relation in self.slice_classes(class_name):
                projection = tav.restricted(self.relation_fields(relation))
                if projection.is_null:
                    continue
                requests.append(LockRequestSpec(
                    resource=("relation", relation),
                    mode=intention_of(self.classify(projection.top_mode)),
                    note="domain intention"))

    def _plan_key_cascade(self, oid: OID, static_class: str, tav: AccessVector,
                          hierarchical: bool,
                          requests: list[LockRequestSpec]) -> None:
        """Foreign-key propagation: updating the key touches subclass relations.

        The cascade targets the relations of every descendant of the static
        class: the engine must find (or verify the absence of) the matching
        foreign-key rows, which conflicts with concurrent writers of those
        relations — this is precisely why the paper's ``T1`` cannot run with
        ``T4`` in the relational schema.
        """
        key = self.key_field(static_class)
        if key is None or key not in tav.written_fields:
            return
        for descendant in self._descendants[static_class]:
            requests.append(LockRequestSpec(
                resource=("relation", descendant), mode="IX", note="key cascade"))
            requests.append(LockRequestSpec(
                resource=("tuple", descendant, oid), mode="W", note="key cascade"))

    def _plan_external_receivers(self, operation: Operation,
                                 requests: list[LockRequestSpec],
                                 receivers: list[tuple[OID, str]]) -> None:
        if not self._needs_shadow_run(operation):
            return
        trace = self._shadow_trace(operation)
        planned: set[tuple[OID, str]] = set()
        for event in self._external_entries(operation, trace):
            key = (event.oid, event.method)
            if key in planned:
                continue
            planned.add(key)
            self._plan_tuple_access(event.oid, event.class_name, event.method,
                                    requests, receivers)
