"""The paper's protocol: per-method access modes from transitive access vectors.

Locks (§5.2):

* an **instance lock** is simply the access mode of the method sent to the
  instance — i.e. the method name, interpreted through the per-class
  commutativity table built at compile time (Table 2);
* a **class lock** is a pair ``(mode, hierarchical?)``: intentional when the
  transaction touches individual instances, hierarchical when it covers the
  whole extent;
* accesses to a *domain* place class locks on every class rooted at the named
  class, because implicit locking is no longer possible once access modes are
  per-class (§5).

Concurrency is controlled **once per instance**: the single lock taken when
the top message arrives covers every self-directed message the method may
send, because the transitive access vector already accounts for them.  The
only additional control points are messages that cross an instance boundary
(e.g. ``send m to f3``), which are new top messages for the instances that
receive them.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Mapping

from repro.core.compiler import CompiledSchema
from repro.errors import UnknownModeError
from repro.locking.modes import ClassLockMode, class_lock_compatible
from repro.objects.oid import OID
from repro.objects.store import ObjectStore
from repro.txn.operations import (
    DomainAllCall,
    DomainSomeCall,
    ExtentCall,
    MethodCall,
    Operation,
)
from repro.txn.protocols.base import ConcurrencyControlProtocol, LockPlan, LockRequestSpec


class TAVProtocol(ConcurrencyControlProtocol):
    """Commutativity-based locking with compile-time access modes."""

    name = "tav"
    description = ("per-method access modes from transitive access vectors; "
                   "one control per instance; explicit (mode, hierarchical) class locks")

    def __init__(self, compiled: CompiledSchema, store: ObjectStore,
                 builtins: Mapping[str, Callable[..., Any]] | None = None) -> None:
        super().__init__(compiled, store, builtins)
        # Constant per-schema translations, hoisted so plan() never re-walks
        # the linearisation or rebuilds identical ClassLockMode pairs.
        self._method_names = {name: frozenset(self._schema.method_names(name))
                              for name in self._schema.class_names}
        self._domains = {name: self._schema.domain(name)
                         for name in self._schema.class_names}
        self._intentional_modes: dict[str, ClassLockMode] = {}
        self._hierarchical_modes: dict[str, ClassLockMode] = {}

    def _class_mode(self, method: str, hierarchical: bool) -> ClassLockMode:
        cache = self._hierarchical_modes if hierarchical else self._intentional_modes
        mode = cache.get(method)
        if mode is None:
            mode = ClassLockMode(method, hierarchical=hierarchical)
            cache[method] = mode
        return mode

    # -- compatibility -----------------------------------------------------------

    def compatible(self, resource: Hashable, held: Hashable, requested: Hashable) -> bool:
        kind = resource[0]
        if kind == "instance":
            oid: OID = resource[1]
            table = self._compiled.compiled_class(oid.class_name).commutativity
            return table.commutes(held, requested)
        if kind == "class":
            class_name: str = resource[1]
            table = self._compiled.compiled_class(class_name).commutativity
            if not isinstance(held, ClassLockMode) or not isinstance(requested, ClassLockMode):
                raise UnknownModeError(
                    f"class locks of the TAV protocol must be ClassLockMode pairs, "
                    f"got {held!r} / {requested!r}")
            return class_lock_compatible(held, requested, table.commutes)
        raise UnknownModeError(f"the TAV protocol does not lock {kind!r} resources")

    # -- planning ------------------------------------------------------------------

    def plan(self, operation: Operation) -> LockPlan:
        requests: list[LockRequestSpec] = []
        receivers: list[tuple[OID, str]] = []
        control_points = 0

        if isinstance(operation, MethodCall):
            control_points += 1
            self._plan_instance_access(operation.oid, operation.method, requests, receivers)
        elif isinstance(operation, DomainSomeCall):
            for class_name in self._domains[operation.class_name]:
                if operation.method in self._method_names[class_name]:
                    requests.append(LockRequestSpec(
                        resource=("class", class_name),
                        mode=self._class_mode(operation.method, hierarchical=False),
                        note="domain intentional"))
            for oid in operation.oids:
                control_points += 1
                requests.append(LockRequestSpec(
                    resource=("instance", oid), mode=operation.method,
                    note="instance access"))
                receivers.append((oid, operation.method))
        elif isinstance(operation, ExtentCall):
            control_points += 1
            requests.append(LockRequestSpec(
                resource=("class", operation.class_name),
                mode=self._class_mode(operation.method, hierarchical=True),
                note="extent hierarchical"))
            receivers.extend((oid, operation.method)
                             for oid in self._store.extent(operation.class_name))
        elif isinstance(operation, DomainAllCall):
            control_points += 1
            for class_name in self._domains[operation.class_name]:
                if operation.method in self._method_names[class_name]:
                    requests.append(LockRequestSpec(
                        resource=("class", class_name),
                        mode=self._class_mode(operation.method, hierarchical=True),
                        note="domain hierarchical"))
            receivers.extend((oid, operation.method)
                             for oid in self._store.domain_extent(operation.class_name))
        else:  # pragma: no cover - defensive
            raise TypeError(f"unsupported operation {operation!r}")

        control_points += self._plan_external_receivers(operation, requests, receivers)
        return LockPlan(requests=tuple(requests), control_points=control_points,
                        receivers=tuple(receivers))

    def plan_cache_key(self, operation: Operation) -> Hashable | None:
        """TAV plans are structural whenever the method has no external sends."""
        return self._structural_cache_key(operation)

    # -- helpers ---------------------------------------------------------------------

    def _plan_instance_access(self, oid: OID, method: str,
                              requests: list[LockRequestSpec],
                              receivers: list[tuple[OID, str]]) -> None:
        """Lock one instance: intentional class lock plus the instance mode."""
        requests.append(LockRequestSpec(
            resource=("class", oid.class_name),
            mode=self._class_mode(method, hierarchical=False),
            note="intentional"))
        requests.append(LockRequestSpec(
            resource=("instance", oid), mode=method, note="instance access"))
        receivers.append((oid, method))

    def _plan_external_receivers(self, operation: Operation,
                                 requests: list[LockRequestSpec],
                                 receivers: list[tuple[OID, str]]) -> int:
        """Plan locks for instances reached through reference fields.

        A message sent to another instance is a new top message for that
        instance: one more control point, one intentional class lock and one
        instance lock in the mode of the method it receives.  Instances
        already covered by a hierarchical class lock of this plan are
        skipped.
        """
        if not self._needs_shadow_run(operation):
            return 0
        hierarchical_classes = {
            request.resource[1] for request in requests
            if request.resource[0] == "class"
            and isinstance(request.mode, ClassLockMode) and request.mode.hierarchical
        }
        trace = self._shadow_trace(operation)
        control_points = 0
        planned: set[tuple[OID, str]] = set()
        for event in self._external_entries(operation, trace):
            if event.oid.class_name in hierarchical_classes:
                continue
            key = (event.oid, event.method)
            if key in planned:
                continue
            planned.add(key)
            control_points += 1
            self._plan_instance_access(event.oid, event.method, requests, receivers)
        return control_points
