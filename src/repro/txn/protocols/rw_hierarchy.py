"""Read/write locking with *implicit* hierarchy locks (ORION style, [8, 17]).

The difference with :class:`~repro.txn.protocols.rw_instance.RWInstanceProtocol`
is how class-level locks are placed:

* touching an instance of class ``C`` requires intention locks on ``C`` *and
  on every ancestor of* ``C`` (the path to the root), so that
* locking a class ``C`` hierarchically (``S``/``X``) implicitly locks all its
  subclasses — no lock is placed on the subclasses themselves.

This is only possible because read/write modes "characterize any method in
any class" (§5); the paper's per-method modes force explicit class locking
instead.  The protocol is used by the ablation benchmark comparing explicit
vs implicit class locking.
"""

from __future__ import annotations

from typing import Hashable

from repro.errors import UnknownModeError
from repro.locking.modes import absolute_of, intention_of, multigranularity_compatible, rw_compatible
from repro.objects.oid import OID
from repro.txn.operations import (
    DomainAllCall,
    DomainSomeCall,
    ExtentCall,
    MethodCall,
    Operation,
)
from repro.txn.protocols.base import ConcurrencyControlProtocol, LockPlan, LockRequestSpec
from repro.txn.protocols.rw_instance import RWInstanceProtocol


class RWHierarchyProtocol(RWInstanceProtocol):
    """Read/write modes with implicit subclass locking."""

    name = "rw-hierarchy"
    description = ("read/write instance locks with implicit hierarchy locking: "
                   "intention locks along the ancestor path, hierarchical locks "
                   "cover subclasses implicitly")

    def plan(self, operation: Operation) -> LockPlan:
        trace = self._shadow_trace(operation)
        requests: list[LockRequestSpec] = []
        receivers: list[tuple[OID, str]] = []
        control_points = 0

        root_lock_class = self._root_lock_class(operation)
        direct_targets = set(operation.target_oids(self._store))

        for event in trace.messages:
            control_points += 1
            mode = self.classify_message(event)
            if event.oid in direct_targets and root_lock_class is not None:
                requests.append(LockRequestSpec(
                    resource=("class", root_lock_class), mode=absolute_of(mode),
                    note=f"implicit hierarchical for {event.method}"))
            else:
                # Intention locks along the whole ancestor path of the
                # receiver's class, then the instance lock.
                path = (*reversed(self._schema.ancestors(event.oid.class_name)),
                        event.oid.class_name)
                for class_name in path:
                    requests.append(LockRequestSpec(
                        resource=("class", class_name), mode=intention_of(mode),
                        note=f"path intention for {event.method}"))
                requests.append(LockRequestSpec(
                    resource=("instance", event.oid), mode=mode,
                    note=f"message {event.method}"))
            if event.is_entry:
                receivers.append((event.oid, event.method))

        if root_lock_class is not None:
            # Ancestors of the hierarchically locked class get intention locks.
            operation_mode = self._operation_mode(operation)
            for class_name in reversed(self._schema.ancestors(root_lock_class)):
                requests.insert(0, LockRequestSpec(
                    resource=("class", class_name), mode=intention_of(operation_mode),
                    note="ancestor intention"))

        if isinstance(operation, DomainSomeCall):
            operation_mode = self._operation_mode(operation)
            path = (*reversed(self._schema.ancestors(operation.class_name)),
                    operation.class_name)
            for class_name in path:
                requests.insert(0, LockRequestSpec(
                    resource=("class", class_name), mode=intention_of(operation_mode),
                    note="domain intention"))

        return LockPlan(requests=tuple(requests), control_points=control_points,
                        receivers=tuple(receivers))

    # -- compatibility must also honour implicit coverage --------------------------

    def compatible(self, resource: Hashable, held: Hashable, requested: Hashable) -> bool:
        kind = resource[0]
        if kind == "instance":
            return rw_compatible(held, requested)
        if kind == "class":
            return multigranularity_compatible(held, requested)
        raise UnknownModeError(f"the RW-hierarchy protocol does not lock {kind!r} resources")

    # -- helpers ---------------------------------------------------------------------

    def _root_lock_class(self, operation: Operation) -> str | None:
        """The single class locked hierarchically (implicitly covering subclasses)."""
        if isinstance(operation, (ExtentCall, DomainAllCall)):
            return operation.class_name
        return None
