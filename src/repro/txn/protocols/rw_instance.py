"""Read/write instance locking with one control per message.

This is the baseline the paper criticises in §3: the only access modes are
``Read`` and ``Write`` on whole instances, every method is classified as a
reader or a writer from its own code, and **every message wants control** —
including self-directed messages produced by code reuse.  Consequences the
paper lists, all observable with this implementation:

* invoking ``m1`` on an instance of ``c1`` controls concurrency three times
  (``m1``, then ``m2`` and ``m3`` sent to ``self``);
* ``m1`` first takes a read lock, then ``m2`` needs a write lock on the same
  instance — a lock escalation, the main source of deadlocks measured on
  System R;
* two writers that touch disjoint fields (``m2`` and ``m4`` in ``c2``)
  conflict anyway (pseudo-conflict).

Classes are locked explicitly with multigranularity modes: ``IS``/``IX``
intention locks for individual-instance accesses, ``S``/``X`` for extent and
domain accesses.
"""

from __future__ import annotations

from typing import Hashable

from repro.errors import UnknownModeError
from repro.locking.modes import (
    absolute_of,
    intention_of,
    multigranularity_compatible,
    rw_compatible,
)
from repro.objects.interpreter import MessageEvent
from repro.objects.oid import OID
from repro.txn.operations import (
    DomainAllCall,
    DomainSomeCall,
    ExtentCall,
    MethodCall,
    Operation,
)
from repro.txn.protocols.base import ConcurrencyControlProtocol, LockPlan, LockRequestSpec


class RWInstanceProtocol(ConcurrencyControlProtocol):
    """Per-message read/write locking on instances (the §3 baseline)."""

    name = "rw-instance"
    description = ("read/write instance locks, one concurrency control per message, "
                   "explicit IS/IX/S/X class locks")

    # -- compatibility -----------------------------------------------------------

    def compatible(self, resource: Hashable, held: Hashable, requested: Hashable) -> bool:
        kind = resource[0]
        if kind == "instance":
            return rw_compatible(held, requested)
        if kind == "class":
            return multigranularity_compatible(held, requested)
        raise UnknownModeError(f"the RW protocol does not lock {kind!r} resources")

    # -- classification ------------------------------------------------------------

    def classify_message(self, event: MessageEvent) -> str:
        """``"R"`` or ``"W"`` for one dispatched method, from its *direct* code.

        The classification looks only at the method's own statements (its
        DAV), exactly as a scheme without transitive analysis would: ``m1``
        is a reader even though the methods it calls write.

        The DAV is taken from the *resolved* class — the class whose body is
        about to execute.  For a prefixed send like ``Account.withdraw`` from
        an overriding subclass this matters: the subclass's override may be a
        reader in its own statements while the inherited body writes, and
        classifying by the override would execute a write under a read lock.
        """
        compiled = self._compiled.compiled_class(event.resolved_class)
        dav = compiled.analyses[event.method].dav
        return self.classify(dav.top_mode)

    # -- planning --------------------------------------------------------------------

    def plan(self, operation: Operation) -> LockPlan:
        trace = self._shadow_trace(operation)
        direct_targets = set(operation.target_oids(self._store))
        requests: list[LockRequestSpec] = []
        receivers: list[tuple[OID, str]] = []
        control_points = 0

        hierarchical_classes = self._hierarchical_classes(operation)
        intentional_classes = self._intentional_classes(operation)

        for event in trace.messages:
            control_points += 1
            mode = self.classify_message(event)
            if event.oid in direct_targets and hierarchical_classes:
                # Instances covered by a class-level lock: the per-message
                # control escalates the class lock instead of locking the
                # instance.
                for class_name in hierarchical_classes:
                    requests.append(LockRequestSpec(
                        resource=("class", class_name), mode=absolute_of(mode),
                        note=f"hierarchical for {event.method}"))
            else:
                requests.append(LockRequestSpec(
                    resource=("class", event.oid.class_name), mode=intention_of(mode),
                    note=f"intention for {event.method}"))
                requests.append(LockRequestSpec(
                    resource=("instance", event.oid), mode=mode,
                    note=f"message {event.method}"))
            if event.is_entry:
                receivers.append((event.oid, event.method))

        for class_name in intentional_classes:
            requests.insert(0, LockRequestSpec(
                resource=("class", class_name),
                mode=intention_of(self._operation_mode(operation)),
                note="domain intention"))

        return LockPlan(requests=tuple(requests), control_points=control_points,
                        receivers=tuple(receivers))

    # -- helpers ---------------------------------------------------------------------

    def _operation_mode(self, operation: Operation) -> str:
        """Classification of the operation's top method on its static class."""
        class_name = operation.static_class()
        compiled = self._compiled.compiled_class(class_name)
        if operation.method not in compiled.methods:
            return "R"
        return self.classify(compiled.analyses[operation.method].dav.top_mode)

    def _hierarchical_classes(self, operation: Operation) -> tuple[str, ...]:
        if isinstance(operation, ExtentCall):
            return (operation.class_name,)
        if isinstance(operation, DomainAllCall):
            return self._schema.domain(operation.class_name)
        return ()

    def _intentional_classes(self, operation: Operation) -> tuple[str, ...]:
        if isinstance(operation, DomainSomeCall):
            return self._schema.domain(operation.class_name)
        return ()
