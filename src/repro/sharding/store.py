"""The sharded object store: one instance map and mutex per shard.

:class:`ShardedObjectStore` is API-compatible with
:class:`~repro.objects.store.ObjectStore` (every protocol, interpreter,
recovery manager and harness talks to it unchanged) but partitions the
instances across N shards chosen by a :class:`~repro.sharding.router.ShardRouter`.
Each shard has its own mutex, so structural operations on unrelated
instances — creates, deletes, extent snapshots — no longer serialise behind
one store-level lock.

OIDs come from a single shared generator, so numbers are globally unique and
monotone in creation order.  Merged views (extents, iteration) are returned
in ascending OID-number order, which is exactly the creation order a plain
:class:`ObjectStore` exposes — a sequential replay on an unsharded replica
therefore visits instances in the same order as the sharded original, which
is what the harness's serializability check relies on.

Thread safety follows the plain store's contract: structural operations are
serialised per shard, field reads/writes on live instances are single dict
operations ordered by the concurrency-control protocol's locks.  A merged
snapshot takes the shard mutexes one at a time, so it is not atomic across
shards; the locking protocols make that safe the same way they make plain
extent snapshots safe — an extent or domain operation holds the class locks
that freeze membership before it asks for the snapshot.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.errors import UnknownClassError, UnknownInstanceError
from repro.objects.instance import Instance
from repro.objects.oid import OID, OIDGenerator
from repro.objects.store import check_field_type
from repro.schema import Schema
from repro.sharding.router import ShardRouter


@dataclass
class _StoreShard:
    """One partition: its instances, per-class extents and mutex."""

    instances: dict[OID, Instance] = field(default_factory=dict)
    extents: dict[str, list[OID]] = field(default_factory=dict)
    mutex: threading.RLock = field(default_factory=threading.RLock)


class ShardedObjectStore:
    """An in-memory object base partitioned across N independently-locked shards."""

    def __init__(self, schema: Schema, router: ShardRouter) -> None:
        self._schema = schema
        self._router = router
        self._shards = [
            _StoreShard(extents={name: [] for name in schema.class_names})
            for _ in range(router.num_shards)
        ]
        #: Read-through index over all shards, so the hot ``get`` path is one
        #: dict hit (GIL-atomic, like the plain store's) instead of a routing
        #: computation per field access.  Maintained under the owning shard's
        #: mutex on create/delete; individual dict operations are atomic
        #: under CPython, so unguarded reads are safe.
        self._live: dict[OID, Instance] = {}
        self._generator = OIDGenerator()

    # -- creation / deletion -------------------------------------------------

    def create(self, class_name: str, **field_values: Any) -> Instance:
        """Create an instance of ``class_name`` on the shard the router picks.

        Same contract as :meth:`ObjectStore.create`: unset fields get their
        type's default value; unknown classes/fields and type mismatches
        raise before anything is allocated.
        """
        if class_name not in self._schema:
            raise UnknownClassError(f"unknown class {class_name!r}")
        fields = self._schema.fields(class_name)
        values: dict[str, Any] = {name: spec.type.default_value
                                  for name, spec in fields.items()}
        for name, value in field_values.items():
            check_field_type(self._schema, class_name, name, value)
        oid = self._generator.next_oid(class_name)
        shard = self._shards[self._router.shard_of_oid(oid)]
        with shard.mutex:
            instance = Instance(oid=oid, class_name=class_name, values=values)
            for name, value in field_values.items():
                instance.set(name, value)
            shard.instances[oid] = instance
            shard.extents[class_name].append(oid)
            self._live[oid] = instance
        return instance

    def delete(self, oid: OID) -> None:
        """Remove an instance from its shard.

        Raises:
            UnknownInstanceError: if the OID is not live.
        """
        shard = self._shards[self._router.shard_of_oid(oid)]
        with shard.mutex:
            instance = self.get(oid)
            del shard.instances[oid]
            shard.extents[instance.class_name].remove(oid)
            del self._live[oid]

    # -- lookup ---------------------------------------------------------------

    def get(self, oid: OID) -> Instance:
        """Return the live instance identified by ``oid``.

        Raises:
            UnknownInstanceError: if the OID is not live.
        """
        try:
            return self._live[oid]
        except KeyError:
            raise UnknownInstanceError(f"no live instance with OID {oid}") from None

    def __contains__(self, oid: OID) -> bool:
        return oid in self._live

    def __len__(self) -> int:
        return len(self._live)

    def __iter__(self) -> Iterator[Instance]:
        snapshot: list[Instance] = []
        for shard in self._shards:
            with shard.mutex:
                snapshot.extend(shard.instances.values())
        snapshot.sort(key=lambda instance: instance.oid.number)
        return iter(snapshot)

    # -- field access with type checking --------------------------------------

    def read_field(self, oid: OID, field_name: str) -> Any:
        """Read one field of one instance."""
        return self.get(oid).get(field_name)

    def write_field(self, oid: OID, field_name: str, value: Any) -> None:
        """Write one field of one instance, enforcing the declared type."""
        instance = self.get(oid)
        check_field_type(self._schema, instance.class_name, field_name, value)
        instance.set(field_name, value)

    # -- checkpoint / recovery support -----------------------------------------

    def snapshot_shard(self, shard_id: int) -> list[tuple[OID, str, dict[str, Any]]]:
        """``(oid, class_name, values-copy)`` for shard ``shard_id``'s instances.

        Taken under that shard's mutex (creations/deletions excluded);
        individual field values may be mid-transaction — the fuzzy part the
        write-ahead log's before-images repair at recovery.
        """
        shard = self._shards[shard_id]
        with shard.mutex:
            return [(instance.oid, instance.class_name, dict(instance.values))
                    for instance in shard.instances.values()]

    def restore_instance(self, oid: OID, class_name: str,
                         values: dict[str, Any]) -> Instance:
        """Re-create an instance under its original OID on its home shard.

        Recovery restores in ascending OID order so merged views keep their
        creation-order shape, then calls :meth:`advance_oids_past`.

        Raises:
            UnknownClassError: for a class the schema does not know.
        """
        if class_name not in self._schema:
            raise UnknownClassError(f"unknown class {class_name!r}")
        instance = Instance(oid=oid, class_name=class_name, values=dict(values))
        shard = self._shards[self._router.shard_of_oid(oid)]
        with shard.mutex:
            shard.instances[oid] = instance
            shard.extents[class_name].append(oid)
            self._live[oid] = instance
        return instance

    def advance_oids_past(self, number: int) -> None:
        """Make sure freshly created instances get OIDs above ``number``."""
        self._generator.advance_past(number)

    def shard_mutex(self, shard_id: int) -> threading.RLock:
        """The structural mutex of one shard (checkpointers hold it briefly)."""
        return self._shards[shard_id].mutex

    # -- extents ---------------------------------------------------------------

    def extent(self, class_name: str) -> tuple[OID, ...]:
        """OIDs of the proper instances of ``class_name``, in creation order."""
        if class_name not in self._schema:
            raise UnknownClassError(f"unknown class {class_name!r}")
        oids: list[OID] = []
        for shard in self._shards:
            with shard.mutex:
                oids.extend(shard.extents[class_name])
        oids.sort(key=lambda oid: oid.number)
        return tuple(oids)

    def domain_extent(self, class_name: str) -> tuple[OID, ...]:
        """OIDs of the instances of the *domain* rooted at ``class_name``.

        Per-class extents are concatenated in domain order, each in creation
        order — the same shape :meth:`ObjectStore.domain_extent` returns.
        """
        oids: list[OID] = []
        for name in self._schema.domain(class_name):
            oids.extend(self.extent(name))
        return tuple(oids)

    def instances_of(self, class_names: Iterable[str]) -> tuple[Instance, ...]:
        """All instances whose proper class is one of ``class_names``."""
        result: list[Instance] = []
        for name in class_names:
            result.extend(self.get(oid) for oid in self.extent(name))
        return tuple(result)

    @property
    def schema(self) -> Schema:
        """The schema this store was created for."""
        return self._schema

    # -- sharding introspection -------------------------------------------------

    @property
    def router(self) -> ShardRouter:
        """The placement router (the engine adopts it for lock sharding)."""
        return self._router

    @property
    def num_shards(self) -> int:
        """How many shards the store is partitioned into."""
        return self._router.num_shards

    def shard_of(self, oid: OID) -> int:
        """The shard index owning ``oid``."""
        return self._router.shard_of_oid(oid)

    def shard_sizes(self) -> tuple[int, ...]:
        """Live-instance count per shard (balance diagnostics, tests)."""
        return tuple(len(shard.instances) for shard in self._shards)
