"""Per-shard undo logs behind the one-store recovery interface.

The engine logs before-images through one object
(:meth:`ShardedRecoveryManager.log_before_image`), but each record is stored
in the undo log of the shard that owns the written instance.  That gives the
two-phase commit coordinator what it needs: shard-local before-image logs a
participant can prepare, discard (commit) or replay (abort) independently,
plus the set of shards a transaction actually wrote
(:meth:`ShardedRecoveryManager.touched_shards`).

With durability on, each shard's :class:`~repro.txn.recovery.RecoveryManager`
carries that shard's :class:`~repro.wal.log.WriteAheadLog`, so a logged
before-image is on disk (write-through) before the write it covers can
execute — the per-shard flush at 2PC prepare then only has to barrier what
is already out of user space.

Like the per-transaction state in the lock front, the touched-shard map is
mutated only from the owning session's thread via single CPython-atomic dict
operations, so no global mutex guards the write path.  The log life cycle
mirrors the per-shard managers': :meth:`undo`/:meth:`forget` are idempotent
and seal the transaction's logs on the shards they touch.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from repro.errors import TransactionError
from repro.objects.oid import OID
from repro.sharding.router import ShardRouter
from repro.txn.recovery import FinishedTransactions, RecoveryManager, UndoRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.wal.log import WriteAheadLog


class ShardedRecoveryManager:
    """Routes undo logging to one :class:`RecoveryManager` per shard."""

    def __init__(self, store, router: ShardRouter,
                 wals: "Sequence[WriteAheadLog | None] | None" = None) -> None:
        if wals is not None and len(wals) != router.num_shards:
            raise ValueError(f"{len(wals)} write-ahead logs for "
                             f"{router.num_shards} shards")
        self._router = router
        #: Per-shard managers run *without* their own finished-tracking: a
        #: shard only hears about transactions that touched it, so a
        #: per-shard floor could never advance.  The seal lives here instead,
        #: engine-wide, where every transaction eventually finishes — which
        #: also catches a late writer aiming at a shard the transaction never
        #: touched (a per-shard seal would wave that one through).
        self._managers = tuple(
            RecoveryManager(store, wal=None if wals is None else wals[shard_id],
                            track_finished=False)
            for shard_id in range(router.num_shards))
        self._finished = FinishedTransactions()
        #: Shards each live transaction has logged before-images on.
        self._touched: dict[int, set[int]] = {}

    # -- logging (the engine's write path) --------------------------------------

    def log_before_image(self, txn: int, oid: OID,
                         fields: Iterable[str]) -> UndoRecord | None:
        """Save a projected before-image in the owning shard's undo log.

        Raises:
            TransactionError: ``txn`` already finished; a late writer must
                not grow a released log on *any* shard.
        """
        if txn in self._finished:
            raise TransactionError(
                f"transaction {txn} already finished; its undo logs were "
                "released and cannot be appended to")
        shard_id = self._router.shard_of_oid(oid)
        record = self._managers[shard_id].log_before_image(txn, oid, fields)
        if record is not None:
            self._touched.setdefault(txn, set()).add(shard_id)
        return record

    # -- whole-transaction operations -------------------------------------------

    def undo(self, txn: int) -> int:
        """Restore every before-image of ``txn`` on every shard it wrote.

        Idempotent: a second call (or one racing a participant-level abort)
        finds the per-shard logs already sealed and undoes nothing.
        """
        undone = 0
        for shard_id in self._touched.pop(txn, ()):
            undone += self._managers[shard_id].undo(txn)
        self._finished.add(txn)
        return undone

    def forget(self, txn: int) -> None:
        """Drop the undo logs of a committed transaction on every shard.

        Idempotent, like :meth:`undo`.
        """
        for shard_id in self._touched.pop(txn, ()):
            self._managers[shard_id].forget(txn)
        self._finished.add(txn)

    def discard_tracking(self, txn: int) -> None:
        """Forget the touched-shard set once participants handled the logs.

        Also the engine's end-of-transaction notification: from here on the
        transaction's logs are sealed on every shard.
        """
        self._touched.pop(txn, None)
        self._finished.add(txn)

    def is_finished(self, txn: int) -> bool:
        """Whether ``txn`` finished here (its logs are sealed everywhere)."""
        return txn in self._finished

    # -- introspection ----------------------------------------------------------

    def touched_shards(self, txn: int) -> frozenset[int]:
        """The shards ``txn`` has undo records on (2PC participant set)."""
        return frozenset(self._touched.get(txn, ()))

    def touched_view(self, txn: int) -> set[int] | None:
        """The live touched-shard set, or ``None`` — NOT to be mutated."""
        return self._touched.get(txn)

    def shard_manager(self, shard_id: int) -> RecoveryManager:
        """The shard-local recovery manager (2PC participants hold these)."""
        return self._managers[shard_id]

    @property
    def num_shards(self) -> int:
        """How many undo-log shards exist."""
        return len(self._managers)

    def log_of(self, txn: int) -> tuple[UndoRecord, ...]:
        """Every undo record of ``txn`` across shards, oldest first per shard."""
        records: list[UndoRecord] = []
        for manager in self._managers:
            records.extend(manager.log_of(txn))
        return tuple(records)

    def pending_transactions(self) -> tuple[int, ...]:
        """Transactions that still have an undo log on some shard."""
        pending: dict[int, None] = {}
        for manager in self._managers:
            for txn in manager.pending_transactions():
                pending.setdefault(txn, None)
        return tuple(pending)
