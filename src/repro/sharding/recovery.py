"""Per-shard undo logs behind the one-store recovery interface.

The engine logs before-images through one object
(:meth:`ShardedRecoveryManager.log_before_image`), but each record is stored
in the undo log of the shard that owns the written instance.  That gives the
two-phase commit coordinator what it needs: shard-local before-image logs a
participant can prepare, discard (commit) or replay (abort) independently,
plus the set of shards a transaction actually wrote
(:meth:`ShardedRecoveryManager.touched_shards`).

Like the per-transaction state in the lock front, the touched-shard map is
mutated only from the owning session's thread via single CPython-atomic dict
operations, so no global mutex guards the write path.
"""

from __future__ import annotations

from typing import Iterable

from repro.objects.oid import OID
from repro.sharding.router import ShardRouter
from repro.txn.recovery import RecoveryManager, UndoRecord


class ShardedRecoveryManager:
    """Routes undo logging to one :class:`RecoveryManager` per shard."""

    def __init__(self, store, router: ShardRouter) -> None:
        self._router = router
        self._managers = tuple(RecoveryManager(store)
                               for _ in range(router.num_shards))
        #: Shards each live transaction has logged before-images on.
        self._touched: dict[int, set[int]] = {}

    # -- logging (the engine's write path) --------------------------------------

    def log_before_image(self, txn: int, oid: OID,
                         fields: Iterable[str]) -> UndoRecord | None:
        """Save a projected before-image in the owning shard's undo log."""
        shard_id = self._router.shard_of_oid(oid)
        record = self._managers[shard_id].log_before_image(txn, oid, fields)
        if record is not None:
            self._touched.setdefault(txn, set()).add(shard_id)
        return record

    # -- whole-transaction operations -------------------------------------------

    def undo(self, txn: int) -> int:
        """Restore every before-image of ``txn`` on every shard it wrote."""
        undone = 0
        for shard_id in self._touched.pop(txn, ()):
            undone += self._managers[shard_id].undo(txn)
        return undone

    def forget(self, txn: int) -> None:
        """Drop the undo logs of a committed transaction on every shard."""
        for shard_id in self._touched.pop(txn, ()):
            self._managers[shard_id].forget(txn)

    def discard_tracking(self, txn: int) -> None:
        """Forget the touched-shard set once participants handled the logs."""
        self._touched.pop(txn, None)

    # -- introspection ----------------------------------------------------------

    def touched_shards(self, txn: int) -> frozenset[int]:
        """The shards ``txn`` has undo records on (2PC participant set)."""
        return frozenset(self._touched.get(txn, ()))

    def touched_view(self, txn: int) -> set[int] | None:
        """The live touched-shard set, or ``None`` — NOT to be mutated."""
        return self._touched.get(txn)

    def shard_manager(self, shard_id: int) -> RecoveryManager:
        """The shard-local recovery manager (2PC participants hold these)."""
        return self._managers[shard_id]

    @property
    def num_shards(self) -> int:
        """How many undo-log shards exist."""
        return len(self._managers)

    def log_of(self, txn: int) -> tuple[UndoRecord, ...]:
        """Every undo record of ``txn`` across shards, oldest first per shard."""
        records: list[UndoRecord] = []
        for manager in self._managers:
            records.extend(manager.log_of(txn))
        return tuple(records)

    def pending_transactions(self) -> tuple[int, ...]:
        """Transactions that still have an undo log on some shard."""
        pending: dict[int, None] = {}
        for manager in self._managers:
            for txn in manager.pending_transactions():
                pending.setdefault(txn, None)
        return tuple(pending)
