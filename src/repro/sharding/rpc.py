"""Shard-participant RPC: the participant protocol as framed messages.

This module is what lets a shard live in another OS process.  It defines
the worker-facing message vocabulary — prepare/commit/abort, blocking lock
traffic, before-image write plans, field reads/writes, whole-operation
execution, snapshots — and :class:`RemoteShardClient`, the coordinator-side
stub that implements three duck-typed surfaces at once:

* the :class:`~repro.sharding.participant.ParticipantClient` commit
  protocol the :class:`~repro.sharding.twopc.TwoPhaseCommitCoordinator`
  drives;
* the per-shard *lock handle* surface of
  :class:`~repro.engine.locks.BlockingLockManager` (``acquire`` /
  ``release_all`` / ``collect_edges`` / ``doom`` / ``clear_doom`` / ...),
  so the existing :class:`~repro.sharding.locks.ShardedLockFront` routes
  blocking lock traffic to workers without knowing they are remote — the
  cross-shard deadlock detector then unions waits-for edges *across
  processes*;
* the data plane the worker-mode engine uses (write plans, reads, writes,
  shipped execution, snapshots).

Nothing here invents a codec: values, OIDs, operations and error replies
ride the exact :mod:`repro.api.messages` machinery (tagged-OID
``encode_value``/``decode_value``, ``message_to_wire``/``decode_message``,
typed :class:`~repro.api.messages.ErrorReply` rebuilt into the *typed*
exception client-side) over the same length-prefixed frames
(:mod:`repro.api.wire`) the socket API uses.  A deadlock victim raises
:class:`~repro.errors.DeadlockError` whether its lock manager lives in this
process or behind a pipe.

Failure model: any transport failure — connect refused, timeout, stream cut
mid-frame — surfaces as :class:`~repro.errors.ParticipantUnavailable`
carrying the shard id.  The coordinator maps that onto presumed abort
(prepare) or tolerated completion (phase two); lock-maintenance calls
(release, doom) swallow it, because a dead worker's locks died with it.

Threading: one :class:`RemoteShardClient` serves every engine thread.
Requests and replies are strictly paired per socket, so the client keeps
one *thread-local* connection per worker — a session thread blocked in a
remote ``acquire`` never blocks another thread's traffic to the same shard.
"""

from __future__ import annotations

import json
import socket
import threading
import time
import weakref
from dataclasses import dataclass, field
from typing import Any, Hashable, Mapping, Sequence

from repro.api.messages import (
    ErrorReply,
    Overloaded,
    decode_message,
    exception_from_reply,
    message_to_wire,
)
from repro.api.wire import recv_frame, send_frame
from repro.errors import ParticipantUnavailable, ProtocolError, ReproError
from repro.locking.manager import USE_DEFAULT_TIMEOUT
from repro.locking.modes import ClassLockMode
from repro.objects.oid import OID
from repro.sharding.participant import ParticipantClient
from repro.wal.records import decode_value, encode_value

#: Default seconds a non-blocking participant RPC may take before the shard
#: counts as unavailable (prepare includes an fsync; snapshots can be large).
DEFAULT_PARTICIPANT_TIMEOUT = 30.0

#: Extra seconds granted on top of a lock timeout for the RPC round trip.
_ACQUIRE_GRACE = 10.0

_CLASS_LOCK_TAG = "$classlock"
_DEFAULT_TIMEOUT_TAG = "default"


# ---------------------------------------------------------------------------
# Resource / mode / timeout codecs
# ---------------------------------------------------------------------------


def encode_mode(mode: Hashable) -> Any:
    """A JSON-representable form of a lock mode.

    Modes are strings (``"R"``, method names, ``IS``...) except the TAV
    protocol's :class:`~repro.locking.modes.ClassLockMode` pair, which gets
    its own tag so it round-trips as the dataclass, not a list.
    """
    if isinstance(mode, ClassLockMode):
        return {_CLASS_LOCK_TAG: [mode.method, mode.hierarchical]}
    return encode_value(mode)


def decode_mode(value: Any) -> Hashable:
    """Invert :func:`encode_mode`."""
    if isinstance(value, Mapping) and set(value.keys()) == {_CLASS_LOCK_TAG}:
        method, hierarchical = value[_CLASS_LOCK_TAG]
        return ClassLockMode(method, bool(hierarchical))
    return _deep_tuple(decode_value(value))


def encode_resource(resource: Hashable) -> Any:
    """A JSON-representable form of a lock resource (tuples become lists)."""
    return encode_value(resource)


def decode_resource(value: Any) -> Hashable:
    """Invert :func:`encode_resource`, restoring hashability.

    Every protocol builds resources as (nested) tuples of scalars and OIDs;
    JSON only has lists, so decoding tuple-izes recursively.
    """
    return _deep_tuple(decode_value(value))


def _deep_tuple(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(_deep_tuple(item) for item in value)
    return value


def encode_timeout(timeout: float | None | object) -> Any:
    """Wire form of an acquire timeout (the worker's-default sentinel tags)."""
    if timeout is USE_DEFAULT_TIMEOUT:
        return _DEFAULT_TIMEOUT_TAG
    return timeout


def decode_timeout(value: Any) -> float | None | object:
    """Invert :func:`encode_timeout`."""
    if value == _DEFAULT_TIMEOUT_TAG:
        return USE_DEFAULT_TIMEOUT
    return value


def encode_images(images: Sequence[tuple[OID, Sequence[str]]]) -> list:
    """Wire form of a write plan: ``(oid, projected fields)`` pairs."""
    return [[encode_value(oid), list(fields)] for oid, fields in images]


def decode_images(value: Any) -> list[tuple[OID, tuple[str, ...]]]:
    """Invert :func:`encode_images`."""
    return [(decode_value(oid), tuple(fields)) for oid, fields in value]


def encode_writes(writes: Sequence[tuple[OID, str, Any]]) -> list:
    """Wire form of buffered field writes: ``(oid, field, value)`` triples."""
    return [[encode_value(oid), field, encode_value(value)]
            for oid, field, value in writes]


def decode_writes(value: Any) -> list[tuple[OID, str, Any]]:
    """Invert :func:`encode_writes`."""
    return [(decode_value(oid), field, decode_value(item))
            for oid, field, item in value]


# ---------------------------------------------------------------------------
# The message vocabulary
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Hello:
    """Identify the worker: shard id, schema, population, recovery report."""

    type = "w_hello"
    _tuples = ()


@dataclass(frozen=True)
class Acquire:
    """Block until ``txn`` holds ``mode`` on ``resource`` in this shard.

    ``trace`` is an optional trace context (``{"t": trace_id, "p":
    parent_span_id}``) — when present the worker records its own span for
    the acquire, parented into the caller's trace.  The same field, with
    the same meaning, rides every traced data-plane and 2PC request below.
    """

    txn: int
    resource: Any
    mode: Any
    timeout: Any = _DEFAULT_TIMEOUT_TAG
    trace: Any = None

    type = "w_acquire"
    _tuples = ()


@dataclass(frozen=True)
class AcquireBatch:
    """Vectored acquire: every lock request of one plan round for this shard.

    ``requests`` is a sequence of ``[resource, mode]`` pairs, acquired in
    order under the shared ``timeout``.  The whole batch costs one round
    trip instead of one per request.  On a mid-batch deadlock or timeout
    the typed error propagates and the locks granted earlier in the batch
    stay held — strict 2PL keeps them until the coordinator aborts, whose
    ``release_all`` cleans up everything this shard granted.
    """

    txn: int
    requests: Any = ()
    timeout: Any = _DEFAULT_TIMEOUT_TAG
    trace: Any = None

    type = "w_acquire_batch"
    _tuples = ()


@dataclass(frozen=True)
class ReleaseAll:
    """Release every lock of ``txn`` here; clear its doom flag."""

    txn: int

    type = "w_release_all"
    _tuples = ()


@dataclass(frozen=True)
class CollectEdges:
    """This shard's waits-for edges (minus already-doomed waiters)."""

    type = "w_collect_edges"
    _tuples = ()


@dataclass(frozen=True)
class Doom:
    """Offer deadlock victims (txn -> cycle); mark those waiting here."""

    victims: Any = ()

    type = "w_doom"
    _tuples = ()


@dataclass(frozen=True)
class ClearDoom:
    """Forget a doom flag for a transaction that finished."""

    txn: int

    type = "w_clear_doom"
    _tuples = ()


@dataclass(frozen=True)
class Holds:
    """Whether ``txn`` holds (that mode of) ``resource`` here."""

    txn: int
    resource: Any
    mode: Any = None

    type = "w_holds"
    _tuples = ()


@dataclass(frozen=True)
class Waiting:
    """Queued requests on one resource, in FIFO order."""

    resource: Any

    type = "w_waiting"
    _tuples = ()


@dataclass(frozen=True)
class Doomed:
    """The victims chosen but not yet aborted in this shard."""

    type = "w_doomed"
    _tuples = ()


@dataclass(frozen=True)
class WritePlan:
    """Log projected before-images (undo + WAL write-through) for ``txn``."""

    txn: int
    images: Any = ()
    trace: Any = None

    type = "w_write_plan"
    _tuples = ()


@dataclass(frozen=True)
class Execute:
    """Log ``images`` then execute one whole operation on this shard.

    ``operation_json`` is the JSON text of the operation's
    :mod:`repro.api.messages` call-request wire form — carried opaquely so
    the envelope codec cannot half-decode it in transit.

    ``writes`` piggybacks field writes the transaction buffered for this
    shard during earlier cross-shard operations (deferred-write mode).
    They are applied after the images are logged (the images shipped with
    them cover every buffered write — the write-ahead rule) and before the
    operation runs, so the method bodies see this transaction's own prior
    writes.
    """

    txn: int
    operation_json: str
    images: Any = ()
    writes: Any = ()
    trace: Any = None

    type = "w_execute"
    _tuples = ()


@dataclass(frozen=True)
class ExecuteFused:
    """Fused plan+execute: the worker plans, locks and runs in one trip.

    For an operation the coordinator's plan routes entirely to this shard,
    the whole plan/acquire/replan/log/execute cycle runs worker-side: the
    worker re-derives the lock plan against its own partition, acquires
    each lock locally (no per-lock RPC), refreshes the plan to its
    fixpoint, logs the before-images it computed *under those locks*, and
    executes.  The reply carries the results, the applied writes, the
    logged images and the acquired resources so the coordinator can mirror
    all of them.

    If a worker-side replan escapes the shard (a refreshed plan needing an
    off-shard resource or receiver), the worker answers a fallback reply
    listing what it already acquired and the coordinator reverts to the
    classic path — re-acquiring a held lock is an immediate grant, so the
    duplication is harmless.

    ``images``/``writes`` flush this transaction's buffered state for this
    shard first, exactly like :class:`Execute`.
    """

    txn: int
    operation_json: str
    images: Any = ()
    writes: Any = ()
    timeout: Any = _DEFAULT_TIMEOUT_TAG
    trace: Any = None

    type = "w_execute_fused"
    _tuples = ()


@dataclass(frozen=True)
class ReadField:
    """Read one field of one instance this shard owns."""

    oid: OID
    field: str

    type = "w_read"
    _tuples = ()


@dataclass(frozen=True)
class WriteField:
    """Write one field of one instance this shard owns."""

    oid: OID
    field: str
    value: Any = None

    type = "w_write"
    _tuples = ()


@dataclass(frozen=True)
class Prepare:
    """Phase one: durable vote for ``txn`` (redo images + PREPARED + barrier).

    ``images``/``writes`` piggyback the transaction's remaining buffered
    before-images and field writes for this shard (deferred-write mode):
    the worker logs the images, applies the writes, and only then votes —
    one message where the eager path paid a ``WritePlan`` plus one
    ``WriteField`` per field.  Both are empty on the eager path.
    """

    txn: int
    images: Any = ()
    writes: Any = ()
    trace: Any = None

    type = "w_prepare"
    _tuples = ()


@dataclass(frozen=True)
class CommitTxn:
    """Phase two: the global decision exists — discard the undo log."""

    txn: int
    trace: Any = None

    type = "w_commit"
    _tuples = ()


@dataclass(frozen=True)
class AbortTxn:
    """Restore this shard to its before-images (prepared or not)."""

    txn: int
    trace: Any = None

    type = "w_abort"
    _tuples = ()


@dataclass(frozen=True)
class Snapshot:
    """This shard's partition as ``{oid-string: field values}``."""

    type = "w_snapshot"
    _tuples = ()


@dataclass(frozen=True)
class Checkpoint:
    """Snapshot the partition to disk and truncate the shard WAL."""

    type = "w_checkpoint"
    _tuples = ()


@dataclass(frozen=True)
class Metrics:
    """The worker's local metrics: counters, histograms, WAL bytes,
    deadlock victims and its lock-contention hot list."""

    type = "w_metrics"
    _tuples = ()


@dataclass(frozen=True)
class Spans:
    """Drain the worker's recorded trace spans (they ship once)."""

    type = "w_spans"
    _tuples = ()


@dataclass(frozen=True)
class ReplHello:
    """Replication handshake: where did the standby's replay leave off?

    ``epoch`` identifies the primary incarnation doing the asking; the
    standby answers with the epoch/generation/LSN position of its replayed
    log so the shipper can resume the stream or decide to rebase.
    """

    shard_id: int
    epoch: str

    type = "w_repl_hello"
    _tuples = ()


@dataclass(frozen=True)
class ReplFrames:
    """A batch of stamped WAL frames shipped primary → standby.

    ``frames`` is ``[[lsn, record payload], ...]`` in log order, tagged with
    the primary ``epoch`` and the WAL rewrite ``generation`` they belong to;
    the standby refuses a stale tag, which is how a shipper that outlived a
    promotion or missed a checkpoint truncation learns to stop/rebase.
    """

    epoch: str
    generation: int
    frames: Any = ()

    type = "w_repl_frames"
    _tuples = ()


@dataclass(frozen=True)
class ReplReset:
    """Rebase the standby: partition snapshot + the surviving log.

    ``instances`` rides in the checkpoint document's ``instances`` shape
    (``[class, number, {field: value}]`` triples, values encoded); the
    standby installs it as its new base checkpoint and replaces its replay
    log with ``frames``.
    """

    epoch: str
    generation: int
    instances: Any = ()
    frames: Any = ()

    type = "w_repl_reset"
    _tuples = ()


@dataclass(frozen=True)
class Promote:
    """Promote a standby: presumed-abort resolution, then serve as primary."""

    type = "w_promote"
    _tuples = ()


@dataclass(frozen=True)
class Fault:
    """Test-only crash injection: die at a named point of the next prepare."""

    action: str

    type = "w_fault"
    _tuples = ()


@dataclass(frozen=True)
class Shutdown:
    """Ask the worker to close its logs and exit cleanly."""

    type = "w_shutdown"
    _tuples = ()


@dataclass(frozen=True)
class Ok:
    """The request succeeded and has no payload."""

    type = "w_ok"
    _tuples = ()


@dataclass(frozen=True)
class Waited:
    """An acquire was granted after ``waited`` seconds blocked."""

    waited: float = 0.0

    type = "w_waited"
    _tuples = ()


@dataclass(frozen=True)
class Value:
    """A single-value answer (field read, holds probe)."""

    value: Any = None

    type = "w_value"
    _tuples = ()


@dataclass(frozen=True)
class Executed:
    """Results of a shipped operation plus the writes it applied."""

    results: Any = ()
    writes: Any = ()

    type = "w_executed"
    _tuples = ()


@dataclass(frozen=True)
class FusedDone:
    """Answer of :class:`ExecuteFused`.

    ``resources`` lists ``[resource, mode, waited]`` for every lock the
    worker acquired, so the coordinator can note them (touched-shard
    tracking, metrics, sanitizer).  With ``fallback`` true the plan escaped
    the shard: nothing was executed, ``results``/``writes``/``images`` are
    empty, and ``resources`` holds what was acquired before the escape.
    """

    results: Any = ()
    writes: Any = ()
    images: Any = ()
    resources: Any = ()
    fallback: bool = False

    type = "w_fused_done"
    _tuples = ()


@dataclass(frozen=True)
class Info:
    """A structured answer (hello, edges, snapshots, checkpoints)."""

    payload: Mapping[str, Any] = field(default_factory=dict)

    type = "w_info"
    _tuples = ()


WorkerRequest = (Hello | Acquire | AcquireBatch | ReleaseAll | CollectEdges
                 | Doom | ClearDoom | Holds | Waiting | Doomed | WritePlan
                 | Execute | ExecuteFused | ReadField | WriteField | Prepare
                 | CommitTxn | AbortTxn | Snapshot | Checkpoint | Metrics
                 | Spans | ReplHello | ReplFrames | ReplReset | Promote
                 | Fault | Shutdown)
WorkerReply = Ok | Waited | Value | Executed | FusedDone | Info | ErrorReply

_REQUEST_TYPES: dict[str, type] = {
    cls.type: cls for cls in (Hello, Acquire, AcquireBatch, ReleaseAll,
                              CollectEdges, Doom, ClearDoom, Holds, Waiting,
                              Doomed, WritePlan, Execute, ExecuteFused,
                              ReadField, WriteField, Prepare, CommitTxn,
                              AbortTxn, Snapshot, Checkpoint, Metrics, Spans,
                              ReplHello, ReplFrames, ReplReset, Promote,
                              Fault, Shutdown)
}
_REPLY_TYPES: dict[str, type] = {
    cls.type: cls for cls in (Ok, Waited, Value, Executed, FusedDone, Info)
}
#: Failures travel exactly like API failures: a typed ErrorReply whose code
#: the client rebuilds into the right exception class.
_REPLY_TYPES[ErrorReply.type] = ErrorReply


def worker_request_from_wire(document: Mapping[str, Any]) -> WorkerRequest:
    """Rebuild a typed worker request (worker side)."""
    return decode_message(document, _REQUEST_TYPES, "worker request")


def worker_reply_from_wire(document: Mapping[str, Any]) -> WorkerReply:
    """Rebuild a typed worker reply (coordinator side)."""
    return decode_message(document, _REPLY_TYPES, "worker reply")


def encode_operation(request: Any) -> str:
    """Opaque wire text of an operation's call-request form."""
    return json.dumps(message_to_wire(request), separators=(",", ":"),
                      sort_keys=True)


# ---------------------------------------------------------------------------
# The coordinator-side stub
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FusedOutcome:
    """Decoded :class:`FusedDone`: what one fused round trip accomplished."""

    #: The plan escaped the shard; only ``resources`` is meaningful.
    fallback: bool
    #: The operation's results, in order.
    results: list
    #: ``(oid, {field: value})`` writes the worker applied (mirror these).
    writes: list
    #: ``(oid, fields)`` before-images the worker logged (mirror-log these).
    images: list
    #: ``(resource, mode, waited seconds)`` locks the worker acquired.
    resources: list


class RemoteShardClient(ParticipantClient):
    """One shard worker, as seen from the coordinator process.

    Implements the 2PC participant protocol, the per-shard lock-handle
    surface :class:`~repro.sharding.locks.ShardedLockFront` expects, and the
    worker-mode data plane — every call one framed round trip on this
    thread's connection to the worker.
    """

    def __init__(self, shard_id: int, address: tuple[str, int], *,
                 participant_timeout: float = DEFAULT_PARTICIPANT_TIMEOUT,
                 lock_timeout: float | None = None) -> None:
        self.shard_id = shard_id
        self._address = address
        self._timeout = participant_timeout
        self._lock_timeout = lock_timeout
        self._local = threading.local()
        #: Weakly held so a socket whose owning thread exited (dropping the
        #: thread-local strong reference) can be collected instead of
        #: accumulating one open descriptor per dead thread; close() walks
        #: whatever is still alive.
        self._all_connections: "weakref.WeakSet[socket.socket]" = weakref.WeakSet()
        self._conn_mutex = threading.Lock()
        self._closed = False
        #: Bumped by :meth:`retarget`; threads whose cached connection was
        #: opened under an older version reconnect (to the new address)
        #: instead of talking to a worker that no longer owns the shard.
        self._conn_version = 0
        #: Written by ShardedLockFront; never called remotely — blocked
        #: requests are found by the periodic cross-process detection pass.
        self.on_block = None
        #: ShardedLockFront's single-shard fast path consults this; the
        #: union path runs coordinator-side where the engine's age order
        #: lives, so the remote handle only stores it.
        self.victim_key = None
        #: Observability hook: called with the seconds one round trip took.
        #: Acquires report *net* transport time — elapsed minus the seconds
        #: the worker says the lock itself was waited on — so a multi-second
        #: lock wait does not masquerade as RPC latency.
        self.on_rpc = None
        #: Accounting hook: called (no arguments) once per *transaction-work*
        #: request issued — locking, data plane, 2PC.  Control and
        #: observability traffic (hello, metrics, spans, detector passes,
        #: snapshots) is excluded, so the count measures exactly the
        #: round trips the batching work optimises.
        self.on_request = None
        #: Per-transaction payloads staged by :meth:`stage_prepare`, consumed
        #: by the next :meth:`prepare` (or dropped by :meth:`abort`).  One
        #: thread drives a transaction's commit, so plain dict ops suffice.
        self._staged: dict[int, tuple[Any, Any]] = {}

    # -- the transport ----------------------------------------------------------

    def _connection(self) -> socket.socket:
        sock = getattr(self._local, "sock", None)
        if (sock is not None
                and getattr(self._local, "version", -1) != self._conn_version):
            self._drop_connection()
            sock = None
        if sock is None:
            if self._closed:
                raise ParticipantUnavailable(
                    f"shard {self.shard_id} client is closed",
                    shard=self.shard_id)
            last: OSError | None = None
            for _ in range(40):
                try:
                    sock = socket.create_connection(self._address,
                                                    timeout=self._timeout)
                    break
                except OSError as error:
                    last = error
                    time.sleep(0.05)
            else:
                raise ParticipantUnavailable(
                    f"shard {self.shard_id} worker at {self._address} is "
                    f"unreachable: {last}", shard=self.shard_id)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._local.sock = sock
            self._local.version = self._conn_version
            with self._conn_mutex:
                self._all_connections.add(sock)
        return sock

    def _drop_connection(self) -> None:
        sock = getattr(self._local, "sock", None)
        if sock is not None:
            self._local.sock = None
            with self._conn_mutex:
                self._all_connections.discard(sock)
            try:
                sock.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

    def _call(self, request: Any, *,
              timeout: "float | None | object" = USE_DEFAULT_TIMEOUT,
              record: bool = True, count: bool = True) -> Any:
        """One request/reply round trip; typed errors re-raised.

        Successful round trips report their duration to :attr:`on_rpc`
        unless ``record`` is false (``acquire`` opts out and reports its
        net transport time itself).  Requests count toward
        :attr:`on_request` unless ``count`` is false (control and
        observability calls opt out).

        Raises:
            ParticipantUnavailable: the worker cannot be reached, timed out,
                or cut the stream mid-frame.
            ReproError: whatever typed error the worker answered with
                (deadlock, lock timeout, a prepare veto, ...).
        """
        sock = self._connection()
        if count and self.on_request is not None:
            self.on_request()
        if timeout is USE_DEFAULT_TIMEOUT:
            timeout = self._timeout
        started = time.perf_counter()
        try:
            sock.settimeout(timeout)
            send_frame(sock, message_to_wire(request))
            document = recv_frame(sock)
        except (OSError, ProtocolError) as error:
            self._drop_connection()
            raise ParticipantUnavailable(
                f"shard {self.shard_id} worker did not answer "
                f"{request.type!r}: {error}", shard=self.shard_id) from None
        if document is None:
            self._drop_connection()
            raise ParticipantUnavailable(
                f"shard {self.shard_id} worker hung up during "
                f"{request.type!r}", shard=self.shard_id)
        if record and self.on_rpc is not None:
            self.on_rpc(time.perf_counter() - started)
        reply = worker_reply_from_wire(document)
        if isinstance(reply, (ErrorReply, Overloaded)):
            raise exception_from_reply(reply)
        return reply

    def close(self) -> None:
        """Close every connection this client ever opened.  Idempotent."""
        self._closed = True
        with self._conn_mutex:
            connections = list(self._all_connections)
            self._all_connections = weakref.WeakSet()
        for sock in connections:
            try:
                sock.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

    def retarget(self, address: tuple[str, int]) -> None:
        """Point this client at a different worker process (failover).

        The same client object is shared by the lock front, the 2PC
        coordinator and the worker-mode data plane, so swapping the address
        here re-routes *every* consumer at once — no tuples to rebuild.
        Cached per-thread connections are invalidated (each thread
        reconnects lazily to the new address) and a closed client reopens.
        """
        with self._conn_mutex:
            self._address = address
            self._closed = False
            self._conn_version += 1
            connections = list(self._all_connections)
            self._all_connections = weakref.WeakSet()
        for sock in connections:
            try:
                sock.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

    # -- handshake / control ------------------------------------------------------

    def hello(self) -> dict[str, Any]:
        """The worker's identity document (shard, schema, recovery report)."""
        return dict(self._call(Hello(), count=False).payload)

    def checkpoint(self) -> dict[str, Any]:
        """Checkpoint the worker's partition; returns what the pass kept."""
        return dict(self._call(Checkpoint(), count=False).payload)

    def inject_fault(self, action: str) -> None:
        """Arm test-only crash injection on the worker."""
        self._call(Fault(action=action), count=False)

    # -- replication (shipper → standby, and promotion) ---------------------------

    def repl_hello(self, shard_id: int, epoch: str) -> dict[str, Any]:
        """Ask a standby where its replay left off (resume handshake)."""
        return dict(self._call(ReplHello(shard_id=shard_id, epoch=epoch),
                               count=False).payload)

    def repl_frames(self, epoch: str, generation: int,
                    frames: Sequence[Any]) -> dict[str, Any]:
        """Ship one batch of stamped WAL frames; returns the replay position."""
        return dict(self._call(ReplFrames(epoch=epoch, generation=generation,
                                          frames=list(frames)),
                               count=False).payload)

    def repl_reset(self, epoch: str, generation: int, instances: Any,
                   frames: Sequence[Any]) -> dict[str, Any]:
        """Rebase a standby onto a snapshot + surviving log."""
        return dict(self._call(ReplReset(epoch=epoch, generation=generation,
                                         instances=instances,
                                         frames=list(frames)),
                               count=False).payload)

    def promote(self) -> dict[str, Any]:
        """Promote a standby to primary; returns its resolution report."""
        return dict(self._call(Promote(), count=False).payload)

    def shutdown(self) -> None:
        """Ask the worker to exit cleanly (tolerates an already-dead one)."""
        try:
            self._call(Shutdown(), timeout=5.0, count=False)
        except ParticipantUnavailable:
            pass

    # -- the 2PC participant protocol ---------------------------------------------

    def stage_prepare(self, txn: int,
                      images: Sequence[tuple[OID, Sequence[str]]],
                      writes: Sequence[tuple[OID, str, Any]]) -> None:
        """Stage buffered images/writes to ride the next :meth:`prepare`.

        Local bookkeeping only — no round trip.  The engine stages each
        touched shard's deferred state just before driving phase one, so
        the flush piggybacks on the prepare message instead of paying its
        own ``WritePlan``/``WriteField`` trips.
        """
        self._staged[txn] = (encode_images(images), encode_writes(writes))

    def prepare(self, txn: int, trace: Any = None) -> None:
        images, writes = self._staged.pop(txn, ((), ()))
        self._call(Prepare(txn=txn, images=images, writes=writes, trace=trace))

    def commit(self, txn: int, trace: Any = None) -> None:
        self._call(CommitTxn(txn=txn, trace=trace))

    def abort(self, txn: int, trace: Any = None) -> None:
        self._staged.pop(txn, None)
        self._call(AbortTxn(txn=txn, trace=trace))

    # -- the lock-handle surface (ShardedLockFront duck type) ---------------------

    def acquire(self, txn: int, resource: Hashable, mode: Hashable,
                timeout: "float | None | object" = USE_DEFAULT_TIMEOUT,
                trace: Any = None) -> float:
        """Blocking remote acquire; returns seconds spent blocked.

        The RPC deadline tracks the lock timeout (plus a grace period for
        the round trip), so a worker that died *while we wait* surfaces as
        :class:`~repro.errors.ParticipantUnavailable` rather than a hang —
        unless the lock timeout is ``None`` (wait forever), where only the
        kernel noticing the dead peer ends the wait.
        """
        effective = timeout
        if effective is USE_DEFAULT_TIMEOUT:
            effective = self._lock_timeout
        rpc_timeout = (None if effective is None
                       else max(float(effective), 0.0) + _ACQUIRE_GRACE)
        started = time.perf_counter()
        reply = self._call(
            Acquire(txn=txn, resource=encode_resource(resource),
                    mode=encode_mode(mode), timeout=encode_timeout(timeout),
                    trace=trace),
            timeout=rpc_timeout, record=False)
        waited = float(reply.waited)
        if self.on_rpc is not None:
            # Net transport time: the round trip minus the lock wait the
            # worker actually served — that difference is the RPC tax.
            self.on_rpc(max(0.0, time.perf_counter() - started - waited))
        return waited

    def acquire_batch(self, txn: int,
                      requests: "Sequence[tuple[Hashable, Hashable]]",
                      timeout: "float | None | object" = USE_DEFAULT_TIMEOUT,
                      trace: Any = None) -> list[float]:
        """Vectored acquire: the whole batch in one round trip.

        Returns the seconds each request spent blocked, aligned with
        ``requests``.  The RPC deadline budgets one lock timeout per
        request (the worker serves them sequentially) plus the usual
        grace; a ``None`` lock timeout waits forever, as with
        :meth:`acquire`.
        """
        effective = timeout
        if effective is USE_DEFAULT_TIMEOUT:
            effective = self._lock_timeout
        rpc_timeout = (None if effective is None
                       else max(float(effective), 0.0) * max(1, len(requests))
                       + _ACQUIRE_GRACE)
        started = time.perf_counter()
        reply = self._call(
            AcquireBatch(txn=txn,
                         requests=[[encode_resource(resource),
                                    encode_mode(mode)]
                                   for resource, mode in requests],
                         timeout=encode_timeout(timeout), trace=trace),
            timeout=rpc_timeout, record=False)
        waits = [float(waited) for waited in reply.value]
        if self.on_rpc is not None:
            self.on_rpc(max(0.0, time.perf_counter() - started - sum(waits)))
        return waits

    def release_all(self, txn: int) -> None:
        """Release ``txn`` everywhere in the shard (dead workers tolerated:
        their locks died with them)."""
        try:
            self._call(ReleaseAll(txn=txn))
        except ParticipantUnavailable:
            pass

    def collect_edges(self) -> dict[int, set[int]]:
        """The shard's waits-for edges (empty when the worker is gone)."""
        try:
            payload = self._call(CollectEdges(), count=False).payload
        except ParticipantUnavailable:
            return {}
        return {int(waiter): {int(target) for target in targets}
                for waiter, targets in payload.get("edges", [])}

    def doom(self, victims: Mapping[int, tuple[int, ...]]) -> tuple[int, ...]:
        """Offer victims; returns those the worker actually marked there."""
        if not victims:
            return ()
        try:
            reply = self._call(Doom(victims=[[txn, list(cycle)]
                                             for txn, cycle in victims.items()]),
                               count=False)
        except ParticipantUnavailable:
            return ()
        return tuple(int(txn) for txn in (reply.value or ()))

    def clear_doom(self, txn: int) -> None:
        try:
            self._call(ClearDoom(txn=txn), count=False)
        except ParticipantUnavailable:
            pass

    def holds(self, txn: int, resource: Hashable,
              mode: Hashable | None = None) -> bool:
        reply = self._call(Holds(
            txn=txn, resource=encode_resource(resource),
            mode=None if mode is None else encode_mode(mode)), count=False)
        return bool(reply.value)

    def waiting(self, resource: Hashable) -> tuple[tuple[int, Hashable], ...]:
        """Queued requests on ``resource`` in FIFO order (introspection)."""
        queued = self._call(Waiting(resource=encode_resource(resource)),
                            count=False).value
        return tuple((int(txn), decode_mode(mode)) for txn, mode in queued)

    def doomed_transactions(self) -> frozenset[int]:
        try:
            payload = self._call(Doomed(), count=False).payload
        except ParticipantUnavailable:
            return frozenset()
        return frozenset(int(txn) for txn in payload.get("doomed", ()))

    # -- the data plane -----------------------------------------------------------

    def write_plan(self, txn: int,
                   images: Sequence[tuple[OID, Sequence[str]]],
                   trace: Any = None) -> None:
        """Log projected before-images on the worker (undo + WAL), before
        any write they cover is shipped."""
        self._call(WritePlan(txn=txn, images=encode_images(images),
                             trace=trace))

    def execute(self, txn: int, operation_request: Any,
                images: Sequence[tuple[OID, Sequence[str]]],
                writes: Sequence[tuple[OID, str, Any]] = (),
                trace: Any = None,
                ) -> tuple[list[Any], list[tuple[OID, dict[str, Any]]]]:
        """Ship a whole single-shard operation: log images, run, return
        ``(results, writes applied)`` so the coordinator can mirror them.

        ``writes`` flushes this transaction's buffered field writes for the
        shard in the same message (deferred-write mode)."""
        reply = self._call(Execute(txn=txn,
                                   operation_json=encode_operation(
                                       operation_request),
                                   images=encode_images(images),
                                   writes=encode_writes(writes),
                                   trace=trace))
        applied = [(oid, dict(values)) for oid, values in reply.writes]
        return list(reply.results), applied

    def execute_fused(self, txn: int, operation_request: Any,
                      images: Sequence[tuple[OID, Sequence[str]]],
                      writes: Sequence[tuple[OID, str, Any]],
                      timeout: "float | None | object" = USE_DEFAULT_TIMEOUT,
                      *, expected_locks: int = 1,
                      trace: Any = None) -> "FusedOutcome":
        """Fused plan+execute: lock acquisition piggybacks on plan shipment.

        The RPC deadline budgets one lock timeout per expected lock (the
        coordinator's own plan size — the worker's replan can only grow
        it, and growth past the budget surfaces as
        :class:`~repro.errors.ParticipantUnavailable` rather than a hang).
        """
        effective = timeout
        if effective is USE_DEFAULT_TIMEOUT:
            effective = self._lock_timeout
        rpc_timeout = (None if effective is None
                       else max(float(effective), 0.0) * max(1, expected_locks)
                       + _ACQUIRE_GRACE)
        started = time.perf_counter()
        reply = self._call(
            ExecuteFused(txn=txn,
                         operation_json=encode_operation(operation_request),
                         images=encode_images(images),
                         writes=encode_writes(writes),
                         timeout=encode_timeout(timeout), trace=trace),
            timeout=rpc_timeout, record=False)
        resources = [(decode_resource(resource), decode_mode(mode),
                      float(waited))
                     for resource, mode, waited in reply.resources]
        if self.on_rpc is not None:
            blocked = sum(waited for _resource, _mode, waited in resources)
            self.on_rpc(max(0.0, time.perf_counter() - started - blocked))
        return FusedOutcome(
            fallback=bool(reply.fallback),
            results=list(reply.results),
            writes=[(oid, dict(values)) for oid, values in reply.writes],
            images=decode_images(reply.images),
            resources=resources)

    def read_field(self, oid: OID, field_name: str) -> Any:
        """Read one field from the owning worker (cross-shard execution)."""
        return self._call(ReadField(oid=oid, field=field_name)).value

    def write_field(self, oid: OID, field_name: str, value: Any) -> None:
        """Write one field on the owning worker (cross-shard execution)."""
        self._call(WriteField(oid=oid, field=field_name, value=value))

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """The worker's own partition as ``{oid-string: field values}``."""
        payload = self._call(Snapshot(), count=False).payload
        return {name: dict(values)
                for name, values in payload.get("instances", {}).items()}

    # -- observability ------------------------------------------------------------

    def metrics_snapshot(self) -> dict[str, Any]:
        """The worker's local metrics document (counters + histograms +
        WAL bytes + deadlock victims + hot resources)."""
        return dict(self._call(Metrics(), count=False).payload)

    def drain_spans(self) -> list[dict[str, Any]]:
        """Collect (and clear) the worker's recorded trace spans; a dead
        worker's spans are simply lost with it."""
        try:
            payload = self._call(Spans(), count=False).payload
        except ParticipantUnavailable:
            return []
        return [dict(span) for span in payload.get("spans", ())]

    # -- introspection ------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """Where the worker listens."""
        return self._address

    def __repr__(self) -> str:
        host, port = self._address
        return f"RemoteShardClient(shard={self.shard_id}, {host}:{port})"


def reply_for_worker_error(error: ReproError) -> ErrorReply:
    """The error reply a worker answers with (same shape as the API's)."""
    from repro.api.messages import reply_for_error

    reply = reply_for_error(error)
    if isinstance(reply, Overloaded):  # pragma: no cover - workers never overload
        reply = ErrorReply(code=error.code, message=str(error))
    return reply
