"""Sharding: partitioned store, per-shard lock managers, cross-shard 2PC.

The single-shard engine of :mod:`repro.engine` funnels every worker thread
through one store mutex and one lock-manager condition variable.  This
package removes that funnel:

* :class:`~repro.sharding.router.ShardRouter` — deterministic placement of
  OIDs, classes and lock resources onto shards
  (:class:`~repro.sharding.router.HashShardRouter` for OID-hash round-robin,
  :class:`~repro.sharding.router.ClassShardRouter` for by-class placement);
* :class:`~repro.sharding.store.ShardedObjectStore` — the
  :class:`~repro.objects.store.ObjectStore` API over N independently-locked
  partitions, with merged views in creation order;
* :class:`~repro.sharding.locks.ShardedLockFront` — one
  :class:`~repro.engine.locks.BlockingLockManager` per shard (own mutex, own
  condition variable) with deadlock detection over the *union* of the
  per-shard waits-for graphs;
* :class:`~repro.sharding.recovery.ShardedRecoveryManager` — before-image
  undo logs partitioned by the written instance's shard;
* :class:`~repro.sharding.twopc.TwoPhaseCommitCoordinator` /
  :class:`~repro.sharding.twopc.ShardParticipant` — prepare/commit/abort
  over the touched shards with a global decision log whose commit record is
  the transaction's serialisation point.

:class:`repro.engine.engine.Engine` accepts ``shards=N`` (or adopts the
router of a sharded store) and wires all of this together; the throughput
harness exposes it as ``python -m repro.engine.harness --shards N``.

Since PR 5 a shard can also live in its **own OS process**:
:class:`~repro.sharding.participant.ParticipantClient` is the
transport-agnostic participant interface,
:mod:`repro.sharding.rpc` carries the participant protocol (locks, write
plans, execution, 2PC) over the API's frames, and
``python -m repro.sharding.worker`` owns one shard's partition, lock
manager, undo log and WAL — ``Engine(shard_workers=N)`` /
``repro-bench --shard-workers N`` is the multi-core configuration.
(The ``rpc`` and ``worker`` modules are imported on demand, not here: the
worker pulls in the engine package, which imports this one.)
"""

from repro.sharding.router import ClassShardRouter, HashShardRouter, ShardRouter
from repro.sharding.store import ShardedObjectStore
from repro.sharding.locks import ShardedLockFront
from repro.sharding.participant import ParticipantClient
from repro.sharding.recovery import ShardedRecoveryManager
from repro.sharding.twopc import (
    CommitDecision,
    ShardParticipant,
    TwoPhaseCommitCoordinator,
)

__all__ = [
    "ClassShardRouter",
    "CommitDecision",
    "HashShardRouter",
    "ParticipantClient",
    "ShardParticipant",
    "ShardRouter",
    "ShardedLockFront",
    "ShardedObjectStore",
    "ShardedRecoveryManager",
    "TwoPhaseCommitCoordinator",
]
