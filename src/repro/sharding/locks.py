"""One blocking lock manager per shard, with cross-shard deadlock detection.

:class:`ShardedLockFront` stands where a single
:class:`~repro.engine.locks.BlockingLockManager` used to stand: ``acquire``
routes each resource to its shard's manager (its own mutex, its own
condition variable), so transactions touching disjoint shards never contend
on the same mutex and a release on one shard wakes only that shard's
waiters instead of every blocked thread in the engine.

Deadlocks do not respect shard boundaries — T1 can hold a lock on shard 0
and wait on shard 1 while T2 does the reverse — so :meth:`detect` unions the
per-shard waits-for graphs before running cycle detection and keeps the
youngest-victim policy (pluggable age order via ``victim_key``).  The doom
is offered to every shard, but a shard marks only victims with a request
queued in it — a transaction is driven by one thread, so it waits in at
most one shard, and a stale victim that already moved on is skipped rather
than left with a doom flag nobody would ever clear.

The per-shard edge snapshots are taken one shard at a time, not atomically
across shards, so a cycle can be a *phantom* assembled from edges of
different instants — the classic distributed-detection caveat.  Dooming a
phantom victim would cost a needless abort-and-retry (never correctness:
aborting is always safe), so :meth:`detect` runs a **confirmation pass**: a
cycle is only doomed if it also exists in a second snapshot taken after the
first, restricted to the edges present in both.  Real deadlocks persist —
a blocked transaction stays blocked until doomed — while phantom edges
vanish between the snapshots.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Hashable, Sequence

from repro.locking.deadlock import choose_victim, find_cycle
from repro.locking.manager import USE_DEFAULT_TIMEOUT, Mode, Resource, TxnId
from repro.sharding.router import ShardRouter

if TYPE_CHECKING:  # pragma: no cover - typing only; a runtime import here
    # would close the repro.engine -> repro.sharding -> repro.engine cycle.
    from repro.engine.locks import BlockingLockManager


class ShardedLockFront:
    """Routes blocking lock traffic to per-shard managers; detects globally.

    The per-transaction touched-shard set is mutated only from the
    transaction's own session thread (single dict/set operations, atomic
    under CPython) — the same confinement contract the object store uses for
    field access — so no front-level mutex reappears on the hot path.
    """

    def __init__(self, shards: Sequence[BlockingLockManager],
                 router: ShardRouter, *,
                 victim_key: Callable[[TxnId], Hashable] | None = None) -> None:
        if len(shards) != router.num_shards:
            raise ValueError(f"router expects {router.num_shards} shards, "
                             f"got {len(shards)} lock managers")
        self._shards = tuple(shards)
        self._router = router
        self.victim_key = victim_key
        #: Shards each live transaction has acquired (or queued) on.
        self._touched: dict[TxnId, set[int]] = {}
        #: Resource -> shard memo.  Routing is deterministic, so the cache
        #: never goes stale; a racy double-compute writes the same value.
        #: Bounded by the set of distinct resources, i.e. the store size.
        self._route_cache: dict[Resource, int] = {}
        #: Deadlock victims attributed per shard (single detector thread
        #: writes; readers take unsynchronised snapshots for reporting).
        self._victims_per_shard = [0] * len(self._shards)

    # -- acquiring -------------------------------------------------------------

    def acquire(self, txn: TxnId, resource: Resource, mode: Mode,
                timeout: float | None | object = USE_DEFAULT_TIMEOUT,
                trace: object = None) -> float:
        """Block until ``txn`` holds ``mode`` on ``resource`` (routed to its shard).

        Same contract as :meth:`BlockingLockManager.acquire`, including the
        non-positive-timeout fail-fast try-lock.  A non-``None`` ``trace``
        context is forwarded to the shard handle (a remote handle sends it
        to its worker; a local manager ignores it).
        """
        shard_id = self._route_cache.get(resource)
        if shard_id is None:
            shard_id = self._router.shard_of_resource(resource)
            self._route_cache[resource] = shard_id
        touched = self._touched.get(txn)
        if touched is None:
            touched = self._touched[txn] = set()
        touched.add(shard_id)
        if trace is None:
            return self._shards[shard_id].acquire(txn, resource, mode, timeout)
        return self._shards[shard_id].acquire(txn, resource, mode, timeout,
                                              trace=trace)

    def acquire_many(self, txn: TxnId,
                     requests: "Sequence[tuple[Resource, Mode]]",
                     timeout: float | None | object = USE_DEFAULT_TIMEOUT,
                     trace: object = None) -> list[float]:
        """Acquire a whole round of lock requests, vectored per shard.

        Requests are grouped by owning shard; a shard handle exposing
        ``acquire_batch`` (a remote worker) gets its whole group in one
        round trip, any other shard is walked request by request — the
        semantics are identical either way, including the mid-batch
        deadlock/timeout contract (earlier grants stay held for the
        caller's abort to release).  Returns seconds blocked, aligned with
        ``requests``.  Within a shard the plan's request order is kept;
        shards proceed in index order so the grouping is deterministic.
        """
        groups: dict[int, list[int]] = {}
        for index, (resource, _mode) in enumerate(requests):
            shard_id = self._route_cache.get(resource)
            if shard_id is None:
                shard_id = self._router.shard_of_resource(resource)
                self._route_cache[resource] = shard_id
            groups.setdefault(shard_id, []).append(index)
        touched = self._touched.get(txn)
        if touched is None:
            touched = self._touched[txn] = set()
        waits = [0.0] * len(requests)
        for shard_id in sorted(groups):
            touched.add(shard_id)
            shard = self._shards[shard_id]
            indexes = groups[shard_id]
            batch = getattr(shard, "acquire_batch", None)
            if batch is not None and len(indexes) > 1:
                granted = batch(txn, [requests[index] for index in indexes],
                                timeout, trace=trace)
                for index, waited in zip(indexes, granted):
                    waits[index] = waited
                continue
            for index in indexes:
                resource, mode = requests[index]
                if trace is None:
                    waits[index] = shard.acquire(txn, resource, mode, timeout)
                else:
                    waits[index] = shard.acquire(txn, resource, mode, timeout,
                                                 trace=trace)
        return waits

    def note_touched(self, txn: TxnId, shard_id: int) -> None:
        """Record that ``txn`` holds (or is about to request) lock state on
        ``shard_id`` — the fused-execute path acquires on the worker, so the
        engine marks the shard before the RPC and ``release_all`` covers a
        mid-flight failure."""
        touched = self._touched.get(txn)
        if touched is None:
            touched = self._touched[txn] = set()
        touched.add(shard_id)

    # -- releasing -------------------------------------------------------------

    def release_all(self, txn: TxnId) -> None:
        """Release ``txn`` everywhere it locked; clear its doom flags everywhere.

        Lock release walks only the shards the transaction touched; doom
        flags are cleared on every shard because the detector dooms victims
        globally.
        """
        touched = self._touched.pop(txn, ())
        for shard_id, shard in enumerate(self._shards):
            if shard_id in touched:
                shard.release_all(txn)  # also clears that shard's doom flag
            else:
                shard.clear_doom(txn)

    def touched_shards(self, txn: TxnId) -> frozenset[int]:
        """The shards ``txn`` has lock state on (2PC participant set)."""
        return frozenset(self._touched.get(txn, ()))

    def touched_view(self, txn: TxnId) -> set[int] | None:
        """The live touched-shard set, or ``None`` — NOT to be mutated.

        The engine's commit path runs once per transaction; handing it the
        internal set spares a frozenset copy there (use
        :meth:`touched_shards` everywhere else).
        """
        return self._touched.get(txn)

    # -- deadlock detection ----------------------------------------------------

    def detect(self) -> tuple[TxnId, ...]:
        """Union the shards' waits-for graphs, doom one victim per cycle.

        A single-shard front delegates to the shard's own atomic
        :meth:`BlockingLockManager.detect` — snapshot, victim choice and
        doom under one mutex hold, exactly the PR 1 behaviour.  Across
        shards that atomicity is impossible, so a first union containing a
        cycle is re-confirmed against a second union and only the edges
        present in both are trusted (see the phantom discussion in the
        module docstring); each shard then dooms only victims still waiting
        in it.  Returns the newly doomed victims, so the background
        :class:`~repro.engine.detector.DeadlockDetector` drives either
        shape interchangeably.
        """
        if len(self._shards) == 1 and hasattr(self._shards[0], "detect"):
            # A local manager detects atomically under its own mutex.  A
            # *remote* shard handle has no detect of its own — victim choice
            # needs the engine-side age order — so it always takes the union
            # path below, which works unchanged for one shard.
            shard = self._shards[0]
            shard.victim_key = self.victim_key
            victims = shard.detect()
            self._victims_per_shard[0] += len(victims)
            return victims
        edges = self._union_edges()
        if not find_cycle(edges):
            return ()
        confirmed = self._union_edges()
        edges = {waiter: targets & confirmed.get(waiter, set())
                 for waiter, targets in edges.items()}
        victims: dict[TxnId, tuple[TxnId, ...]] = {}
        while True:
            cycle = find_cycle(edges)
            if not cycle:
                break
            victim = choose_victim(cycle, self.victim_key)
            victims[victim] = tuple(cycle)
            edges.pop(victim, None)
        if victims:
            for shard_id, shard in enumerate(self._shards):
                accepted = shard.doom(victims) or ()
                self._victims_per_shard[shard_id] += len(accepted)
        return tuple(victims)

    def _union_edges(self) -> dict[TxnId, set[TxnId]]:
        edges: dict[TxnId, set[TxnId]] = {}
        for shard in self._shards:
            for waiter, targets in shard.collect_edges().items():
                existing = edges.get(waiter)
                if existing is None:
                    edges[waiter] = targets
                else:
                    existing.update(targets)
        return edges

    # -- signalling ------------------------------------------------------------

    @property
    def on_block(self) -> Callable[[], None] | None:
        """The blocked-request hook, fanned out to every shard manager."""
        return self._shards[0].on_block

    @on_block.setter
    def on_block(self, hook: Callable[[], None] | None) -> None:
        for shard in self._shards:
            shard.on_block = hook

    # -- introspection ---------------------------------------------------------

    @property
    def shards(self) -> tuple[BlockingLockManager, ...]:
        """The per-shard blocking managers (tests, metrics)."""
        return self._shards

    @property
    def num_shards(self) -> int:
        """How many lock shards the front routes over."""
        return len(self._shards)

    @property
    def router(self) -> ShardRouter:
        """The resource router in use."""
        return self._router

    def shard_of(self, resource: Resource) -> int:
        """The shard index arbitrating ``resource``."""
        return self._router.shard_of_resource(resource)

    def holds(self, txn: TxnId, resource: Resource, mode: Mode | None = None) -> bool:
        """Whether ``txn`` currently holds (that mode of) ``resource``."""
        return self._shards[self._router.shard_of_resource(resource)].holds(
            txn, resource, mode)

    def waiting(self, resource: Resource) -> tuple[tuple[TxnId, Mode], ...]:
        """Queued requests on ``resource`` in FIFO order."""
        return self._shards[self._router.shard_of_resource(resource)].waiting(resource)

    def doomed_transactions(self) -> frozenset[TxnId]:
        """Victims chosen by the detector that have not yet aborted."""
        doomed: set[TxnId] = set()
        for shard in self._shards:
            doomed.update(shard.doomed_transactions())
        return frozenset(doomed)

    def victim_counts(self) -> tuple[int, ...]:
        """Deadlock victims attributed to each shard (the shard where the
        victim's blocked request was actually doomed)."""
        return tuple(self._victims_per_shard)
