"""The shard worker: one shard of the engine as its own OS process.

``python -m repro.sharding.worker --shard-id K --shards N ...`` owns shard
K outright: the shard's store partition, its
:class:`~repro.engine.locks.BlockingLockManager`, its undo log and its
write-ahead log all live *here*, and the coordinating engine reaches them
only through the framed participant protocol of :mod:`repro.sharding.rpc`.
That is what finally turns shard partitioning into multi-core parallelism:
each worker is a separate interpreter with its own GIL, so commuting
transactions on different shards really execute concurrently, and
``Engine(shard_workers=N)`` keeps the familiar strict-2PL / 2PC semantics
across the processes.

What a worker serves:

* **locking** — blocking ``acquire`` (the RPC blocks until granted, timed
  out, or doomed), release, and the waits-for edge collection + doom offers
  the coordinator's global deadlock detector drives;
* **the data plane** — before-image write plans (undo + WAL write-through,
  honouring the write-ahead rule *before* any covered write arrives),
  single field reads/writes for cross-shard operations, and whole-operation
  ``execute`` for single-shard operations: the worker logs the images, runs
  the method bodies on its own partition with its own interpreter, and
  returns the results plus the writes it applied;
* **two-phase commit** — ``prepare`` (redo images + PREPARED marker +
  barrier, then the yes vote), ``commit``, ``abort``, exactly the
  :class:`~repro.sharding.twopc.ShardParticipant` semantics;
* **checkpoints and snapshots** of its own partition.

Determinism contract: the worker populates the same deterministic store as
the coordinator (same schema name, instance count and seed — verified at
``hello`` time), so OIDs and extents agree across all processes without
ever shipping the store itself.  The worker holds the full populated store
but *owns* only its shard's partition: everything it serves (snapshots,
checkpoints, reads, shipped execution) concerns instances its shard owns —
other partitions go stale in this process and are never consulted.

**Per-participant recovery**: started over a directory whose
``shard-K.wal`` already exists, the worker first recovers *its own* shard —
base checkpoint, structural records, then undo/redo resolved against the
coordinator's durable decision log under presumed abort (an in-doubt
transaction that prepared here but has no commit record is undone; one with
a commit record is redone).  It then writes a fresh checkpoint, truncates
its log, and serves — no single-process
:class:`~repro.wal.recovery_runner.RecoveryRunner` over the whole directory
required, which is what lets one crashed worker rejoin while the others
keep their state.

The worker never aborts transactions on client disconnect: transaction
ownership lives with the coordinating engine, whose session threads may
reach the worker over many connections.  If the coordinator dies, restart
the cluster (presumed abort resolves whatever was in flight).
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import signal
import socket
import threading
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.analysis.sanitizer import WorkerStoreGuard, sanitize_from_env
from repro.api.messages import request_from_wire, operation_from_request
from repro.api.wire import recv_frame, send_frame
from repro.core.compiler import compile_schema
from repro.engine.locks import BlockingLockManager
from repro.engine.metrics import EngineMetrics
from repro.errors import (
    DeadlockError,
    LockTimeoutError,
    ProtocolError,
    ReproError,
    WALError,
)
from repro.obs.tracing import TraceContext, Tracer
from repro.objects.interpreter import ExecutionTrace, Interpreter
from repro.objects.oid import OID
from repro.objects.store import ObjectStore
from repro.core.modes import AccessMode
from repro.replication.ship import ReplicationShipper
from repro.replication.standby import StandbyReplicator
from repro.schema import banking_schema, figure1_schema, library_schema
from repro.sharding import rpc
from repro.sharding.router import HashShardRouter
from repro.sharding.twopc import ShardParticipant
from repro.sim.workload import populate_store
from repro.txn.plan_cache import PlanCache
from repro.txn.protocols import PROTOCOLS
from repro.txn.recovery import RecoveryManager
from repro.wal.checkpoint import read_checkpoint_file, write_checkpoint_file
from repro.wal.log import DecisionLog, WriteAheadLog, read_records
from repro.wal.records import (
    InstanceCreated,
    InstanceDeleted,
    RedoImage,
    UndoImage,
    decode_value,
    encode_value,
)

#: The deterministic schemas a worker can build by name (the coordinator and
#: every worker must name the same one — verified at ``hello`` time).
SCHEMAS: dict[str, Callable[[], Any]] = {
    "banking": banking_schema,
    "library": library_schema,
    "figure1": figure1_schema,
}

#: Exit code of a deliberately injected crash (tests assert on it).
FAULT_EXIT = 42

#: Span names for traced requests — the worker-side halves of the stages
#: the engine's spans cover from the coordinator side.
_SPAN_NAMES: dict[type, str] = {
    rpc.Acquire: "shard-acquire",
    rpc.AcquireBatch: "shard-acquire-batch",
    rpc.WritePlan: "shard-write-plan",
    rpc.Execute: "shard-execute",
    rpc.ExecuteFused: "shard-execute-fused",
    rpc.Prepare: "shard-prepare",
    rpc.CommitTxn: "shard-commit",
    rpc.AbortTxn: "shard-abort",
}

#: Bound on worker-side plan-refresh rounds of a fused execute — the same
#: guard the engine's ``_acquire_plan`` applies, for the same reason: each
#: round only adds requests, so two rounds normally reach the fixpoint.
_FUSED_REPLAN_ROUNDS = 16


class ShardWorker:
    """One shard's store partition, lock manager, undo log and WAL."""

    def __init__(self, *, shard_id: int, shards: int, protocol: str = "tav",
                 schema: str = "banking", instances: int = 4,
                 populate_seed: int = 11, lock_timeout: float | None = 5.0,
                 durability: str = "off", wal_dir: "str | Path | None" = None,
                 role: str = "primary",
                 ship_to: "Sequence[tuple[str, int]]" = (),
                 standby_slot: int = 0,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        if not 0 <= shard_id < shards:
            raise ValueError(f"shard-id {shard_id} outside 0..{shards - 1}")
        if schema not in SCHEMAS:
            raise ValueError(f"unknown schema {schema!r}; "
                             f"expected one of {', '.join(SCHEMAS)}")
        if role not in ("primary", "standby"):
            raise ValueError(f"unknown worker role {role!r}")
        if role == "standby" and durability == "off":
            raise WALError("a standby replays into its own WAL; "
                           "run it with --durability lazy or fsync")
        if ship_to and durability == "off":
            raise WALError("WAL shipping needs a WAL; "
                           "run the primary with --durability lazy or fsync")
        self.shard_id = shard_id
        self.role = role
        self._config = {"shard": shard_id, "shards": shards,
                        "protocol": protocol, "schema": schema,
                        "instances": instances,
                        "populate_seed": populate_seed,
                        "durability": durability}
        self._schema = SCHEMAS[schema]()
        self._compiled = compile_schema(self._schema)
        self._router = HashShardRouter(shards)
        self._store = populate_store(self._schema, instances,
                                     seed=populate_seed)
        self._protocol = PROTOCOLS[protocol](self._compiled, self._store)
        #: Memoized structural plans for the fused path's replan loop.  A
        #: worker's population is fixed after spawn (the engine refuses
        #: mid-epoch create/delete in worker mode), so no invalidation
        #: hook is needed here.
        self._plans = PlanCache(self._protocol)
        self._locks = BlockingLockManager(self._protocol.create_lock_manager(),
                                          default_timeout=lock_timeout)
        self._interpreter = Interpreter(self._store)
        #: REPRO_SANITIZE reaches workers through spawn()'s inherited
        #: environment: shipped operations then run behind a
        #: WorkerStoreGuard, and the images each txn has logged here are
        #: tracked so worker-side writes can be checked against them.
        self._sanitize = sanitize_from_env()
        self._sanitize_images: dict[int, set[tuple[OID, str]]] = {}

        self._fsync = durability == "fsync"
        self._wal: WriteAheadLog | None = None
        self._wal_path: Path | None = None
        self._ckpt_path: Path | None = None
        self._decisions_path: Path | None = None
        self._replicator: StandbyReplicator | None = None
        self._shipper: ReplicationShipper | None = None
        self._promotion_report: dict[str, Any] | None = None
        self.recovery_report: dict[str, Any] | None = None
        if durability != "off":
            if wal_dir is None:
                raise WALError(f"durability mode {durability!r} needs --wal-dir")
            root = Path(wal_dir)
            root.mkdir(parents=True, exist_ok=True)
            # A standby keeps its replica files beside the primary's under
            # distinct names — after a failover both logs coexist in the
            # shared durability directory without clobbering each other.
            # The slot keeps several standbys of one shard apart on disk.
            suffix = ".standby" if standby_slot == 0 \
                else f".standby{standby_slot}"
            prefix = (f"shard-{shard_id}" if role == "primary"
                      else f"shard-{shard_id}{suffix}")
            self._wal_path = root / f"{prefix}.wal"
            self._ckpt_path = root / f"{prefix}.ckpt"
            self._decisions_path = root / "decisions.log"
            restarted = self._wal_path.exists()
            if role == "primary":
                if restarted:
                    self.recovery_report = self._recover_own_shard()
                self._wal = WriteAheadLog(self._wal_path,
                                          sync_on_barrier=self._fsync)
                if restarted:
                    # Everything the old log held is resolved (presumed
                    # abort); install the recovered state as the new base.
                    self._wal.rewrite(lambda record: False)
                self._checkpoint()  # the base checkpoint of this partition
            else:
                # Standby: the existing log is a replay stream to resume,
                # not a crash to resolve — resolution happens at promotion.
                self._wal = WriteAheadLog(self._wal_path,
                                          sync_on_barrier=self._fsync)
                self._replicator = StandbyReplicator(
                    shard_id=shard_id, store=self._store, wal=self._wal,
                    ckpt_path=self._ckpt_path,
                    meta_path=root / f"{prefix}.meta", fsync=self._fsync,
                    own_instances=self._own_instances)
                if restarted:
                    self.recovery_report = self._replicator.replay_existing()

        self._recovery = RecoveryManager(self._store, wal=self._wal,
                                         track_finished=False)
        self._participant = ShardParticipant(shard_id, self._recovery,
                                             wal=self._wal)

        #: Local observability: the worker's own counters and latency
        #: histograms (served over the ``w_metrics`` RPC and merged into
        #: the coordinator's cluster snapshot), plus a tracer whose spans
        #: the coordinator drains over ``w_spans``.
        self._metrics = EngineMetrics()
        self._tracer = Tracer(capacity=20_000)
        if self._wal is not None:
            self._wal.on_barrier = (
                lambda seconds: self._metrics.record_latency("barrier", seconds))

        if role == "primary" and ship_to:
            assert self._wal is not None  # enforced above: shipping needs a WAL
            self._shipper = ReplicationShipper(
                shard_id=shard_id, wal=self._wal,
                # The pid distinguishes primary incarnations: a restarted
                # primary must not resume a stream its predecessor owned.
                epoch=f"pid-{os.getpid()}",
                clients=[rpc.RemoteShardClient(shard_id, (str(peer), int(p)),
                                               participant_timeout=10.0)
                         for peer, p in ship_to],
                snapshot=self._replication_snapshot)
            self._shipper.start()

        self._listener = socket.create_server((host, port))
        self._listener.settimeout(0.2)
        self._address = (host, self._listener.getsockname()[1])
        self._stop = threading.Event()
        self._mutex = threading.Lock()
        self._clients: set[socket.socket] = set()
        self._fault_action: str | None = None
        self._handlers: dict[type, Callable[[Any], Any]] = {
            rpc.Hello: self._hello,
            rpc.Acquire: self._acquire,
            rpc.AcquireBatch: self._acquire_batch,
            rpc.ReleaseAll: self._release_all,
            rpc.CollectEdges: self._collect_edges,
            rpc.Doom: self._doom,
            rpc.ClearDoom: self._clear_doom,
            rpc.Holds: self._holds,
            rpc.Waiting: self._waiting,
            rpc.Doomed: self._doomed,
            rpc.WritePlan: self._write_plan,
            rpc.Execute: self._execute,
            rpc.ExecuteFused: self._execute_fused,
            rpc.ReadField: self._read_field,
            rpc.WriteField: self._write_field,
            rpc.Prepare: self._prepare,
            rpc.CommitTxn: self._commit,
            rpc.AbortTxn: self._abort,
            rpc.Snapshot: self._snapshot,
            rpc.Checkpoint: self._checkpoint_request,
            rpc.Metrics: self._metrics_request,
            rpc.Spans: self._spans_request,
            rpc.ReplHello: self._repl_hello,
            rpc.ReplFrames: self._repl_frames,
            rpc.ReplReset: self._repl_reset,
            rpc.Promote: self._promote,
            rpc.Fault: self._fault,
            rpc.Shutdown: self._shutdown_request,
        }

    # -- per-participant recovery -------------------------------------------------

    def _recover_own_shard(self) -> dict[str, Any]:
        """Rebuild this shard's partition from its checkpoint + WAL.

        Resolution asks the coordinator's durable decision log (a file in
        the shared durability directory) and applies **presumed abort**: no
        commit record ⇒ undo.  Only records of this shard's log are
        consulted — the other shards' state belongs to their own workers.
        """
        assert self._wal_path is not None
        outcomes = DecisionLog.outcomes_at(self._decisions_path)
        max_number = 0
        document = read_checkpoint_file(self._ckpt_path)
        restored = 0
        if document is not None:
            for class_name, number, values in document["instances"]:
                oid = OID(class_name=class_name, number=number)
                decoded = {name: decode_value(value)
                           for name, value in values.items()}
                if oid in self._store:
                    self._store.get(oid).restore(decoded)
                else:
                    self._store.restore_instance(oid, class_name, decoded)
                max_number = max(max_number, number)
                restored += 1
        records = list(read_records(self._wal_path))
        for record in records:
            if isinstance(record, InstanceCreated):
                max_number = max(max_number, record.oid.number)
                if record.oid not in self._store:
                    # Values arrive decoded from record_from_payload.
                    self._store.restore_instance(record.oid, record.class_name,
                                                 dict(record.values))
            elif isinstance(record, InstanceDeleted):
                if record.oid in self._store:
                    self._store.delete(record.oid)
        winners: set[int] = set()
        losers: set[int] = set()
        in_doubt: set[int] = set()
        prepared: set[int] = set()
        undo_applied = redo_applied = 0
        for record in records:
            if isinstance(record, (InstanceCreated, InstanceDeleted)):
                continue
            if record.kind == "prepared":
                prepared.add(record.txn)
            verdict = outcomes.get(record.txn)
            if verdict == "commit":
                winners.add(record.txn)
            else:
                losers.add(record.txn)
                if verdict is None:
                    in_doubt.add(record.txn)
            oid = getattr(record, "oid", None)
            if oid is not None:
                max_number = max(max_number, oid.number)
        for record in reversed(records):
            if isinstance(record, UndoImage) \
                    and outcomes.get(record.txn) != "commit":
                undo_applied += self._apply_image(record)
        for record in records:
            if isinstance(record, RedoImage) \
                    and outcomes.get(record.txn) == "commit":
                redo_applied += self._apply_image(record)
        self._store.advance_oids_past(max_number)
        return {
            "shard": self.shard_id,
            "restored_instances": restored,
            "winners": sorted(winners),
            "losers": sorted(losers),
            "in_doubt": sorted(in_doubt),
            "prepared_in_doubt": sorted(in_doubt & prepared),
            "undo_applied": undo_applied,
            "redo_applied": redo_applied,
        }

    def _apply_image(self, record: "UndoImage | RedoImage") -> int:
        if record.oid not in self._store:
            return 0
        instance = self._store.get(record.oid)
        for name, value in record.values.items():
            instance.set(name, value)
        return 1

    # -- checkpointing ------------------------------------------------------------

    def _own_instances(self):
        return [instance for instance in self._store
                if self._router.shard_of_oid(instance.oid) == self.shard_id]

    def _checkpoint(self) -> list[int]:
        """Snapshot this partition and truncate the WAL behind it."""
        if self._wal is None or self._ckpt_path is None:
            return []
        with self._wal.mutex:
            recovery = getattr(self, "_recovery", None)
            keep = (set(recovery.pending_transactions())
                    if recovery is not None else set())
            snapshot = [(instance.oid, instance.class_name,
                         dict(instance.values))
                        for instance in self._own_instances()]
            write_checkpoint_file(self._ckpt_path, self.shard_id, keep,
                                  snapshot, fsync=self._fsync)
            self._wal.rewrite(lambda record: record.txn in keep)
        return sorted(keep)

    # -- replication --------------------------------------------------------------

    def _replication_snapshot(self) -> list:
        """This partition in the checkpoint document's ``instances`` shape.

        Called by the shipper with the WAL mutex held, so the snapshot and
        the log tail it is paired with cannot tear (the same ordering the
        fuzzy checkpoint relies on).
        """
        return [[instance.class_name, instance.oid.number,
                 {name: encode_value(value)
                  for name, value in instance.values.items()}]
                for instance in self._own_instances()]

    def _require_standby(self) -> StandbyReplicator:
        if self.role != "standby" or self._replicator is None:
            raise ProtocolError(
                f"shard {self.shard_id} worker is {self.role}, not a standby")
        return self._replicator

    def _repl_hello(self, request: rpc.ReplHello) -> rpc.Info:
        if request.shard_id != self.shard_id:
            raise ProtocolError(
                f"replication stream for shard {request.shard_id} offered "
                f"to shard {self.shard_id}")
        return rpc.Info(payload=self._require_standby().handshake(
            request.epoch))

    def _repl_frames(self, request: rpc.ReplFrames) -> rpc.Info:
        return rpc.Info(payload=self._require_standby().apply_frames(
            request.epoch, request.generation, request.frames))

    def _repl_reset(self, request: rpc.ReplReset) -> rpc.Info:
        return rpc.Info(payload=self._require_standby().reset(
            request.epoch, request.generation, request.instances,
            request.frames))

    def _promote(self, request: rpc.Promote) -> rpc.Info:
        """Promote this standby: presumed-abort resolution, then serve.

        The replayed log + checkpoint are exactly the shape
        :meth:`_recover_own_shard` consumes, so promotion *is* the existing
        per-participant recovery run against the coordinator's durable
        decision log: winners redone, everything without a commit record
        (including eagerly replayed after-images of losers) undone.  The
        resolved state then becomes the new base — fresh checkpoint, empty
        log — and the worker answers the data plane as a primary.
        Idempotent: a second promotion returns the first report.
        """
        if self._promotion_report is not None:
            return rpc.Info(payload=dict(self._promotion_report))
        self._require_standby()
        assert self._wal is not None
        with self._wal.mutex:
            report = self._recover_own_shard()
            self._wal.rewrite(lambda record: False)
            self.role = "primary"
            self._checkpoint()
        self._promotion_report = {"promotion": report,
                                  "shard": self.shard_id}
        return rpc.Info(payload=dict(self._promotion_report))

    # -- serving ------------------------------------------------------------------

    def serve_forever(self) -> None:
        """Accept connections until :meth:`shutdown`; one thread each."""
        workers: list[threading.Thread] = []
        while not self._stop.is_set():
            try:
                sock, _peer = self._listener.accept()
            except TimeoutError:
                continue
            except OSError:
                break
            with self._mutex:
                if self._stop.is_set():
                    sock.close()
                    break
                self._clients.add(sock)
            thread = threading.Thread(target=self._serve_connection,
                                      args=(sock,), daemon=True,
                                      name=f"repro-shard{self.shard_id}-conn")
            thread.start()
            workers.append(thread)
        self._listener.close()
        for sock in list(self._clients):
            with contextlib.suppress(OSError):
                sock.shutdown(socket.SHUT_RDWR)
            sock.close()
        for thread in workers:
            thread.join(timeout=1.0)

    def shutdown(self) -> None:
        """Stop accepting and unblock the serve loop.  Idempotent."""
        self._stop.set()

    def close(self) -> None:
        """Checkpoint (bounding the next recovery) and close the log."""
        if self._shipper is not None:
            self._shipper.stop()
        if self._wal is not None:
            if self.role == "primary":
                # An unpromoted standby must NOT checkpoint: its log is the
                # replay stream a restart resumes, not pending-txn state.
                self._checkpoint()
            self._wal.close()

    def _serve_connection(self, sock: socket.socket) -> None:
        sock.settimeout(None)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            while True:
                document = recv_frame(sock)
                if document is None:
                    return
                post: Callable[[], None] | None = None
                try:
                    request = rpc.worker_request_from_wire(document)
                    handler = self._handlers.get(type(request))
                    if handler is None:
                        raise ProtocolError(
                            f"worker cannot serve {type(request).__name__}")
                    reply = self._handle(request, handler)
                    if isinstance(reply, tuple):
                        reply, post = reply
                except ReproError as error:
                    reply = rpc.reply_for_worker_error(error)
                except Exception as error:  # noqa: BLE001 - answer, not die
                    reply = rpc.reply_for_worker_error(
                        ReproError(f"worker internal error: {error!r}"))
                send_frame(sock, rpc.message_to_wire(reply))
                if post is not None:
                    post()
        except (ProtocolError, ConnectionError, OSError):
            return
        finally:
            with self._mutex:
                self._clients.discard(sock)
            sock.close()

    def _handle(self, request: Any, handler: Callable[[Any], Any]) -> Any:
        """Run one handler, recording a span when the request is traced.

        Untraced requests (the default) pay one ``getattr`` — the trace
        context only rides requests whose transaction is being sampled.
        The span closes whichever way the handler exits, so doomed
        acquires and prepare vetoes show up in the trace too.
        """
        context = TraceContext.from_wire(getattr(request, "trace", None))
        if context is None:
            return handler(request)
        span = self._tracer.begin_span(
            _SPAN_NAMES.get(type(request), request.type),
            context.trace_id, parent=context.parent, category="worker",
            args={"shard": self.shard_id, "txn": getattr(request, "txn", None)})
        try:
            return handler(request)
        finally:
            self._tracer.end_span(span)

    # -- handlers -----------------------------------------------------------------

    def _hello(self, request: rpc.Hello) -> rpc.Info:
        payload = dict(self._config)
        payload["recovery"] = self.recovery_report
        payload["wal_bytes"] = (0 if self._wal is None
                                else self._wal.bytes_written)
        payload["role"] = self.role
        payload["promotion"] = self._promotion_report
        return rpc.Info(payload=payload)

    def _acquire(self, request: rpc.Acquire) -> rpc.Waited:
        try:
            waited = self._locks.acquire(request.txn,
                                         rpc.decode_resource(request.resource),
                                         rpc.decode_mode(request.mode),
                                         rpc.decode_timeout(request.timeout))
        except LockTimeoutError as error:
            self._metrics.record_timeout()
            self._metrics.record_requests(1, error.waited)
            raise
        except DeadlockError as error:
            self._metrics.record_requests(1, error.waited)
            raise
        self._metrics.record_requests(1, waited)
        return rpc.Waited(waited=waited)

    def _acquire_one_local(self, txn: int, resource: Any, mode: Any,
                           timeout: Any) -> float:
        """One local blocking acquire with the per-request metrics the
        single-``Acquire`` handler records, shared by the batched paths."""
        try:
            waited = self._locks.acquire(txn, resource, mode, timeout)
        except LockTimeoutError as error:
            self._metrics.record_timeout()
            self._metrics.record_requests(1, error.waited)
            raise
        except DeadlockError as error:
            self._metrics.record_requests(1, error.waited)
            raise
        self._metrics.record_requests(1, waited)
        return waited

    def _acquire_batch(self, request: rpc.AcquireBatch) -> rpc.Value:
        # One message, N acquires, in order.  A mid-batch deadlock/timeout
        # propagates as the typed error; locks granted earlier in the batch
        # stay held for the coordinator's abort to release (strict 2PL).
        timeout = rpc.decode_timeout(request.timeout)
        waits = []
        for resource, mode in request.requests:
            waits.append(self._acquire_one_local(
                request.txn, rpc.decode_resource(resource),
                rpc.decode_mode(mode), timeout))
        return rpc.Value(value=waits)

    def _release_all(self, request: rpc.ReleaseAll) -> rpc.Ok:
        self._locks.release_all(request.txn)
        return rpc.Ok()

    def _collect_edges(self, request: rpc.CollectEdges) -> rpc.Info:
        edges = self._locks.collect_edges()
        return rpc.Info(payload={"edges": [[waiter, sorted(targets)]
                                           for waiter, targets in edges.items()]})

    def _doom(self, request: rpc.Doom) -> rpc.Value:
        victims = {int(txn): tuple(int(t) for t in cycle)
                   for txn, cycle in request.victims}
        accepted = self._locks.doom(victims)
        return rpc.Value(value=sorted(accepted))

    def _clear_doom(self, request: rpc.ClearDoom) -> rpc.Ok:
        self._locks.clear_doom(request.txn)
        return rpc.Ok()

    def _holds(self, request: rpc.Holds) -> rpc.Value:
        mode = None if request.mode is None else rpc.decode_mode(request.mode)
        return rpc.Value(value=self._locks.holds(
            request.txn, rpc.decode_resource(request.resource), mode))

    def _waiting(self, request: rpc.Waiting) -> rpc.Value:
        queued = self._locks.waiting(rpc.decode_resource(request.resource))
        return rpc.Value(value=[[txn, rpc.encode_mode(mode)]
                                for txn, mode in queued])

    def _doomed(self, request: rpc.Doomed) -> rpc.Info:
        return rpc.Info(payload={
            "doomed": sorted(self._locks.doomed_transactions())})

    def _note_images(self, txn: int, images) -> None:
        if not self._sanitize:
            return
        target = self._sanitize_images.setdefault(txn, set())
        for oid, fields in images:
            for field in fields:
                target.add((oid, field))

    def _write_plan(self, request: rpc.WritePlan) -> rpc.Ok:
        self._log_images(request.txn, request.images)
        return rpc.Ok()

    def _log_images(self, txn: int, wire_images: Any) -> tuple:
        """Log shipped before-images (undo + WAL write-through) for ``txn``."""
        images = tuple(rpc.decode_images(wire_images))
        for oid, fields in images:
            self._recovery.log_before_image(txn, oid, fields)
        self._note_images(txn, images)
        return images

    def _apply_writes(self, txn: int, wire_writes: Any) -> None:
        """Apply buffered field writes flushed by the coordinator.

        Callers log the covering images first — the write-ahead rule holds
        for flushed writes exactly as for executed ones.  Under
        ``REPRO_SANITIZE`` every flushed write must fall inside the shipped
        image set (S3); the lock-coverage check stays coordinator-side,
        because the covering lock may be a hierarchical class lock homed on
        a different shard and so invisible to this worker's lock manager.
        """
        if not wire_writes:
            return
        writes = rpc.decode_writes(wire_writes)
        store: Any = self._store
        if self._sanitize:
            store = WorkerStoreGuard(
                self._store, locks=self._locks, txn=txn,
                allowed_writes=frozenset(self._sanitize_images.get(txn, ())),
                require_local_locks=False)
        for oid, field, value in writes:
            store.write_field(oid, field, value)

    def _run_operation(self, txn: int, operation: Any) -> tuple[list, list]:
        """Execute one operation on this partition; returns results and the
        ``[oid, {field: value}]`` writes it applied (for mirroring)."""
        trace = ExecutionTrace()
        if self._sanitize:
            guard = WorkerStoreGuard(
                self._store, locks=self._locks, txn=txn,
                allowed_writes=frozenset(self._sanitize_images.get(txn, ())))
            interpreter = Interpreter(guard)
        else:
            interpreter = self._interpreter
        results = self._protocol.execute(operation, interpreter, trace=trace)
        written: dict[OID, dict[str, Any]] = {}
        for event in trace.field_accesses:
            if event.mode is AccessMode.WRITE:
                written.setdefault(event.oid, {})[event.field] = None
        writes = []
        for oid, fields in written.items():
            instance = self._store.get(oid)
            writes.append([oid, {name: instance.get(name) for name in fields}])
        return results, writes

    def _execute(self, request: rpc.Execute) -> rpc.Executed:
        # Before-images first — the write-ahead rule, same ordering the
        # in-process engine's perform() follows.  Flushed buffered writes
        # (covered by those images) apply before the operation runs, so the
        # method bodies see this transaction's earlier cross-shard writes.
        self._log_images(request.txn, request.images)
        self._apply_writes(request.txn, request.writes)
        call = request_from_wire(json.loads(request.operation_json))
        operation = operation_from_request(call)
        results, writes = self._run_operation(request.txn, operation)
        return rpc.Executed(results=results, writes=writes)

    def _execute_fused(self, request: rpc.ExecuteFused) -> rpc.FusedDone:
        """Fused plan+execute: plan, lock, replan, log and run — all here.

        The coordinator only verified its *initial* plan routes to this
        shard; data may shift while locks are awaited, so every refreshed
        plan is re-checked and an escape answers a fallback reply instead
        of touching off-shard state.
        """
        txn = request.txn
        self._log_images(txn, request.images)
        self._apply_writes(txn, request.writes)
        call = request_from_wire(json.loads(request.operation_json))
        operation = operation_from_request(call)
        timeout = rpc.decode_timeout(request.timeout)
        acquired: dict[tuple[Any, Any], float] = {}

        def fallback() -> rpc.FusedDone:
            return rpc.FusedDone(fallback=True,
                                 resources=self._encode_acquired(acquired))

        plan, _cached = self._plans.plan(operation)
        final = None
        for _ in range(_FUSED_REPLAN_ROUNDS):
            if any(self._router.shard_of_oid(oid) != self.shard_id
                   for oid, _method in plan.receivers):
                return fallback()
            for lock_request in plan.requests:
                key = (lock_request.resource, lock_request.mode)
                if key in acquired:
                    continue
                if self._router.shard_of_resource(
                        lock_request.resource) != self.shard_id:
                    return fallback()
                acquired[key] = self._acquire_one_local(
                    txn, lock_request.resource, lock_request.mode, timeout)
            refreshed, _cached = self._plans.plan(operation)
            if all((r.resource, r.mode) in acquired
                   for r in refreshed.requests):
                final = refreshed
                break
            plan = refreshed
        if final is None:
            raise ReproError(
                f"fused lock plan of {operation!r} did not converge within "
                f"{_FUSED_REPLAN_ROUNDS} refresh rounds")
        # Before-images computed *under the held locks* — the coordinator
        # could not have known them when it shipped the operation.
        projections = tuple(self._protocol.undo_projections(final))
        for oid, fields in projections:
            self._recovery.log_before_image(txn, oid, fields)
        self._note_images(txn, projections)
        results, writes = self._run_operation(txn, operation)
        return rpc.FusedDone(results=results, writes=writes,
                             images=rpc.encode_images(projections),
                             resources=self._encode_acquired(acquired))

    @staticmethod
    def _encode_acquired(acquired: "dict[tuple[Any, Any], float]") -> list:
        return [[rpc.encode_resource(resource), rpc.encode_mode(mode), waited]
                for (resource, mode), waited in acquired.items()]

    def _read_field(self, request: rpc.ReadField) -> rpc.Value:
        return rpc.Value(value=self._store.read_field(request.oid,
                                                      request.field))

    def _write_field(self, request: rpc.WriteField) -> rpc.Ok:
        self._store.write_field(request.oid, request.field, request.value)
        return rpc.Ok()

    def _take_fault(self, *stages: str) -> "str | None":
        """Consume the injected fault action iff it belongs to this stage.

        A commit-stage fault must survive the prepare that precedes it, so
        each handler only pops the actions it owns.
        """
        if self._fault_action in stages:
            action, self._fault_action = self._fault_action, None
            return action
        return None

    def _prepare(self, request: rpc.Prepare):
        action = self._take_fault("exit_before_prepare",
                                  "exit_before_prepare_reply",
                                  "exit_after_prepare_reply")
        if action == "exit_before_prepare":
            # Die before phase one touches the log at all: nothing durable
            # exists for this transaction here, so presumed abort resolves
            # it with no undo work — the pure before-prepare crash window.
            os._exit(FAULT_EXIT)
        # Piggybacked deferred state first: log the remaining before-images,
        # apply the buffered writes they cover (write-ahead preserved), and
        # only then vote — the redo images the prepare then logs read the
        # final values these writes just installed.
        self._log_images(request.txn, request.images)
        self._apply_writes(request.txn, request.writes)
        if action == "exit_before_prepare_reply":
            # The durable yes-vote exists (redo images + PREPARED marker,
            # barriered) but the coordinator never hears it: the classic
            # prepared-in-doubt window, SIGKILL-style.
            self._participant.prepare(request.txn)
            os._exit(FAULT_EXIT)
        self._participant.prepare(request.txn)
        if action == "exit_after_prepare_reply":
            # Vote yes, then die before phase two can reach us.
            return rpc.Ok(), lambda: os._exit(FAULT_EXIT)
        return rpc.Ok()

    def _commit(self, request: rpc.CommitTxn) -> rpc.Ok:
        action = self._take_fault("exit_after_decision")
        if action == "exit_after_decision":
            # The coordinator's commit record is durable (phase two reached
            # us), but this participant dies before applying it: recovery /
            # promotion must redo the transaction from its redo images.
            os._exit(FAULT_EXIT)
        self._participant.commit(request.txn)
        self._sanitize_images.pop(request.txn, None)
        return rpc.Ok()

    def _abort(self, request: rpc.AbortTxn) -> rpc.Ok:
        self._participant.abort(request.txn)
        self._sanitize_images.pop(request.txn, None)
        return rpc.Ok()

    def _snapshot(self, request: rpc.Snapshot) -> rpc.Info:
        instances = {str(instance.oid): dict(instance.values)
                     for instance in self._own_instances()}
        return rpc.Info(payload={"instances": instances})

    def _checkpoint_request(self, request: rpc.Checkpoint) -> rpc.Info:
        return rpc.Info(payload={"kept": self._checkpoint()})

    def _metrics_request(self, request: rpc.Metrics) -> rpc.Info:
        return rpc.Info(payload={
            "metrics": self._metrics.snapshot(),
            "wal_bytes": 0 if self._wal is None else self._wal.bytes_written,
            "deadlock_victims": self._locks.victims_doomed,
            "hot_resources": [[str(resource), waits, wait_time]
                              for resource, waits, wait_time
                              in self._locks.hot_resources()],
            "role": self.role,
            # Primary side: per-standby stream health (lag in LSNs and
            # seconds).  Standby side: the replay position.
            "replication": (None if self._shipper is None
                            else self._shipper.status()),
            "standby": (None if self._replicator is None
                        else self._replicator.status()),
        })

    def _spans_request(self, request: rpc.Spans) -> rpc.Info:
        return rpc.Info(payload={
            "spans": [span.to_wire() for span in self._tracer.drain()],
            "dropped": self._tracer.dropped,
        })

    def _fault(self, request: rpc.Fault) -> rpc.Ok:
        if request.action not in ("exit_before_prepare",
                                  "exit_before_prepare_reply",
                                  "exit_after_prepare_reply",
                                  "exit_after_decision"):
            raise ProtocolError(f"unknown fault action {request.action!r}")
        self._fault_action = request.action
        return rpc.Ok()

    def _shutdown_request(self, request: rpc.Shutdown):
        return rpc.Ok(), self.shutdown

    # -- introspection ------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound."""
        return self._address

    @property
    def store(self) -> ObjectStore:
        """The worker's store (tests)."""
        return self._store

    @property
    def participant(self) -> ShardParticipant:
        """The in-process participant core (tests)."""
        return self._participant


# ---------------------------------------------------------------------------
# Spawning workers as subprocesses (engine, tests, examples)
# ---------------------------------------------------------------------------


def spawn(*, shard_id: int, shards: int, protocol: str = "tav",
          schema: str = "banking", instances: int = 4, populate_seed: int = 11,
          lock_timeout: "float | None" = 5.0, durability: str = "off",
          wal_dir: "str | Path | None" = None, role: str = "primary",
          ship_to: "Sequence[tuple[str, int]]" = (), standby_slot: int = 0,
          host: str = "127.0.0.1", port: int = 0, ready_timeout: float = 60.0):
    """Start one ``python -m repro.sharding.worker`` and wait for its port.

    Returns ``(process, (host, port))`` once the child printed its
    ``listening on`` line.  The caller owns the process.
    """
    import subprocess
    import sys

    package_root = Path(__file__).resolve().parent.parent.parent
    environment = dict(os.environ)
    environment["PYTHONPATH"] = os.pathsep.join(
        [str(package_root)] + ([environment["PYTHONPATH"]]
                               if environment.get("PYTHONPATH") else []))
    command = [sys.executable, "-m", "repro.sharding.worker",
               "--host", host, "--port", str(port),
               "--shard-id", str(shard_id), "--shards", str(shards),
               "--protocol", protocol, "--schema", schema,
               "--instances", str(instances),
               "--populate-seed", str(populate_seed),
               "--lock-timeout",
               "none" if lock_timeout is None else str(lock_timeout),
               "--durability", durability, "--role", role,
               "--standby-slot", str(standby_slot)]
    if wal_dir is not None:
        command += ["--wal-dir", str(wal_dir)]
    for peer, peer_port in ship_to:
        command += ["--ship-to", f"{peer}:{peer_port}"]
    process = subprocess.Popen(command, env=environment,
                               stdout=subprocess.PIPE, text=True)
    address: list[tuple[str, int]] = []
    ready = threading.Event()

    def read() -> None:
        assert process.stdout is not None
        for line in process.stdout:
            if line.startswith("listening on "):
                bound_host, _, bound_port = line.split()[-1].rpartition(":")
                address.append((bound_host, int(bound_port)))
                ready.set()
                return

    reader = threading.Thread(target=read, daemon=True,
                              name=f"repro-worker-spawn-{shard_id}")
    reader.start()
    if not ready.wait(ready_timeout):
        process.kill()
        process.wait()
        raise RuntimeError(
            f"shard worker {shard_id} never reported listening within "
            f"{ready_timeout}s (exit {process.poll()})")
    return process, address[0]


def spawn_cluster(shards: int, **options: Any) -> list[tuple[Any, tuple[str, int]]]:
    """Spawn one worker per shard; returns ``(process, address)`` per shard."""
    cluster = []
    try:
        for shard_id in range(shards):
            cluster.append(spawn(shard_id=shard_id, shards=shards, **options))
    except BaseException:
        for process, _address in cluster:
            process.kill()
            process.wait()
        raise
    return cluster


# ---------------------------------------------------------------------------
# Command line
# ---------------------------------------------------------------------------


def _lock_timeout(text: str) -> float | None:
    """CLI form of the default lock timeout (``none`` = wait forever)."""
    return None if text.lower() == "none" else float(text)


def main(argv: Sequence[str] | None = None) -> int:
    """Build one shard's worker, serve it, block until SIGTERM/SIGINT."""
    from repro.wal.durability import MODES as DURABILITY_MODES

    parser = argparse.ArgumentParser(
        prog="python -m repro.sharding.worker",
        description="Serve one store shard — its partition, lock manager, "
                    "undo log and WAL — over the participant RPC protocol.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="port to bind; 0 picks a free one (default: 0)")
    parser.add_argument("--shard-id", type=int, required=True,
                        help="which shard this worker owns (0-based)")
    parser.add_argument("--shards", type=int, required=True,
                        help="total shard count of the engine")
    parser.add_argument("--protocol", default="tav", choices=list(PROTOCOLS))
    parser.add_argument("--schema", default="banking", choices=list(SCHEMAS))
    parser.add_argument("--instances", type=int, default=4,
                        help="instances per class (must match the engine)")
    parser.add_argument("--populate-seed", type=int, default=11,
                        help="store population seed (must match the engine)")
    parser.add_argument("--lock-timeout", type=_lock_timeout, default=5.0,
                        help="default per-request lock timeout in seconds, "
                             "or 'none' to wait forever (must match the "
                             "engine's default_lock_timeout)")
    parser.add_argument("--durability", choices=DURABILITY_MODES,
                        default="off")
    parser.add_argument("--wal-dir", metavar="PATH", default=None,
                        help="shared durability directory (shard-K.wal / "
                             "shard-K.ckpt live here; decisions.log is read "
                             "for per-participant recovery)")
    parser.add_argument("--role", choices=("primary", "standby"),
                        default="primary",
                        help="primary serves the data plane; standby replays "
                             "a shipped WAL stream until promoted")
    parser.add_argument("--ship-to", metavar="HOST:PORT", action="append",
                        default=[],
                        help="standby address to ship WAL frames to "
                             "(repeatable; primary role only)")
    parser.add_argument("--standby-slot", type=int, default=0,
                        help="which standby of the shard this is; keeps "
                             "several standbys' replica files apart")
    arguments = parser.parse_args(argv)

    ship_to = []
    for target in arguments.ship_to:
        peer, _, peer_port = target.rpartition(":")
        ship_to.append((peer, int(peer_port)))
    worker = ShardWorker(
        shard_id=arguments.shard_id, shards=arguments.shards,
        protocol=arguments.protocol, schema=arguments.schema,
        instances=arguments.instances, populate_seed=arguments.populate_seed,
        lock_timeout=arguments.lock_timeout, durability=arguments.durability,
        wal_dir=arguments.wal_dir, role=arguments.role, ship_to=ship_to,
        standby_slot=arguments.standby_slot,
        host=arguments.host, port=arguments.port)
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda *_: worker.shutdown())
    if worker.recovery_report is not None:
        print("recovered " + json.dumps(worker.recovery_report,
                                        sort_keys=True), flush=True)
    host, port = worker.address
    print(f"listening on {host}:{port}", flush=True)
    try:
        worker.serve_forever()
    finally:
        worker.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
