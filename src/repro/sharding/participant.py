"""The transport-agnostic participant interface of two-phase commit.

A :class:`ParticipantClient` is *one shard's side of the commit protocol as
the coordinator sees it*: prepare votes, phase-two completion, abort.  The
:class:`~repro.sharding.twopc.TwoPhaseCommitCoordinator` drives the protocol
exclusively through this interface, so where the shard actually lives is an
implementation detail:

* :class:`~repro.sharding.twopc.ShardParticipant` — the in-process
  implementation; the shard's undo log, prepared set and write-ahead log are
  objects in the engine's own interpreter (exactly the pre-RPC behaviour);
* :class:`~repro.sharding.rpc.RemoteShardClient` — the same protocol spoken
  over length-prefixed frames to a ``python -m repro.sharding.worker``
  process owning the shard's store partition, lock manager, undo log and
  WAL.

The split is what turns sharding into distribution: the coordinator's
decision log, the presumed-abort recovery rule and the prepare/commit/abort
message shapes were already transport-agnostic — this interface makes the
participant side swappable too.

Failure contract: a remote implementation raises
:class:`~repro.errors.ParticipantUnavailable` when the shard cannot be
reached.  During prepare that is a no vote; during :meth:`commit` and
:meth:`abort` the coordinator tolerates it, because the durable decision
log already fixes the outcome and a restarted worker resolves itself
against it (per-participant recovery).
"""

from __future__ import annotations

import abc


class ParticipantClient(abc.ABC):
    """One shard's prepare/commit/abort surface, wherever the shard lives."""

    #: The shard this participant speaks for.
    shard_id: int

    @abc.abstractmethod
    def prepare(self, txn: int) -> None:
        """Phase one: make the shard's vote durable and vote.

        Raises:
            TwoPhaseCommitError: this shard votes no (a veto, or — for a
                remote shard — :class:`~repro.errors.ParticipantUnavailable`).
        """

    @abc.abstractmethod
    def commit(self, txn: int) -> None:
        """Phase two: the global decision exists — discard the undo log."""

    @abc.abstractmethod
    def abort(self, txn: int) -> None:
        """Restore the shard to its before-images (prepared or not)."""

    def close(self) -> None:
        """Release any channel this client holds.  Idempotent; optional."""
