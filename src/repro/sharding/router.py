"""Shard placement: mapping OIDs, classes and lock resources onto shards.

A :class:`ShardRouter` is the one source of truth for "which shard owns
this?".  It answers three questions — where an instance lives
(:meth:`~ShardRouter.shard_of_oid`), where class-granule state lives
(:meth:`~ShardRouter.shard_of_class`), and which shard's lock manager
arbitrates a lock resource (:meth:`~ShardRouter.shard_of_resource`) — and
the only correctness requirement is *determinism*: the same input must
always map to the same shard, so that two transactions conflicting on a
resource meet in the same lock manager and an OID is always looked up in the
shard that created it.

Two placements are provided:

* :class:`HashShardRouter` — OID-hash placement.  Sequential OID numbers
  spread round-robin across shards, so hot instances of one class land on
  different shards and unrelated transactions stop sharing a mutex.
* :class:`ClassShardRouter` — by-class placement.  Every instance of a class
  (and the class-granule locks protecting it) lives on the class's shard, so
  a transaction confined to one class stays single-shard and never pays the
  two-phase commit.
"""

from __future__ import annotations

import abc
import zlib
from typing import Hashable, Mapping

from repro.objects.oid import OID


def _stable_string_shard(name: str, num_shards: int) -> int:
    """Deterministic shard of a string, stable across processes and runs.

    ``hash()`` is salted per process (PYTHONHASHSEED), which would scatter a
    class's locks across different shards in different runs; CRC32 is not.
    """
    return zlib.crc32(name.encode("utf-8")) % num_shards


class ShardRouter(abc.ABC):
    """Deterministic placement of OIDs, classes and lock resources."""

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError(f"need at least one shard, got {num_shards}")
        self._num_shards = num_shards

    @property
    def num_shards(self) -> int:
        """How many shards this router distributes over."""
        return self._num_shards

    # -- to implement -----------------------------------------------------------

    @abc.abstractmethod
    def shard_of_oid(self, oid: OID) -> int:
        """The shard owning the instance identified by ``oid``."""

    @abc.abstractmethod
    def shard_of_class(self, class_name: str) -> int:
        """The shard owning class-granule state (class/relation locks)."""

    # -- provided ----------------------------------------------------------------

    def shard_of_resource(self, resource: Hashable) -> int:
        """The shard whose lock manager arbitrates ``resource``.

        Protocol resources are tuples whose first element names the granule
        kind — ``("instance", oid)``, ``("class", name)``,
        ``("relation", name)``, ``("tuple", relation, oid)``,
        ``("field", oid, field_name)``.  The kind tag is skipped; an OID
        operand routes by instance placement, a string operand by class
        placement (OIDs win, so a tuple lock follows its tuple, not its
        relation).  Anything else — including non-tuple resources — falls
        back to a stable hash of its ``repr``.
        """
        if isinstance(resource, tuple) and len(resource) > 1:
            operands = resource[1:]
            for operand in operands:
                if isinstance(operand, OID):
                    return self.shard_of_oid(operand)
            for operand in operands:
                if isinstance(operand, str):
                    return self.shard_of_class(operand)
        return _stable_string_shard(repr(resource), self._num_shards)


class HashShardRouter(ShardRouter):
    """OID-hash placement: instance ``n`` lives on shard ``n % num_shards``.

    OID numbers are allocated from one monotone counter per store, so this
    is a perfectly balanced round-robin over creation order; class-granule
    resources hash on the class name.  Because an instance and its class
    usually land on different shards, protocols that pair instance locks
    with class-intention locks make most transactions span two lock shards
    (and thus pay the two-phase commit) even when all their *data* is on
    one shard — :class:`ClassShardRouter` trades balance for keeping such
    transactions single-shard.
    """

    def shard_of_oid(self, oid: OID) -> int:
        return oid.number % self._num_shards

    def shard_of_class(self, class_name: str) -> int:
        return _stable_string_shard(class_name, self._num_shards)


class ClassShardRouter(ShardRouter):
    """By-class placement: a class, its instances and its locks share a shard.

    ``assignment`` pins chosen classes to chosen shards (e.g. the two hot
    classes onto different shards); unassigned classes fall back to a stable
    hash of the class name.
    """

    def __init__(self, num_shards: int,
                 assignment: Mapping[str, int] | None = None) -> None:
        super().__init__(num_shards)
        self._assignment = dict(assignment or {})
        for class_name, shard in self._assignment.items():
            if not 0 <= shard < num_shards:
                raise ValueError(
                    f"class {class_name!r} assigned to shard {shard}, but "
                    f"only shards 0..{num_shards - 1} exist")

    def shard_of_oid(self, oid: OID) -> int:
        return self.shard_of_class(oid.class_name)

    def shard_of_class(self, class_name: str) -> int:
        try:
            return self._assignment[class_name]
        except KeyError:
            return _stable_string_shard(class_name, self._num_shards)
