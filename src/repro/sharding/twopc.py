"""Two-phase commit across store shards.

A transaction that wrote on more than one shard must still commit or abort
atomically.  The pieces:

* :class:`ShardParticipant` — one per shard.  ``prepare`` validates and
  freezes the shard's before-image log for the transaction (phase one) and
  votes; ``commit`` discards that log (phase two); ``abort`` replays it,
  restoring the shard to its before-images whether or not the shard had
  already prepared.
* :class:`TwoPhaseCommitCoordinator` — collects the votes of every touched
  shard, and keeps the **global decision log**: one
  :class:`CommitDecision` per transaction outcome.  The engine appends the
  commit decision while holding its commit mutex, *between* phase one and
  phase two — that single record is the serialisation point that makes a
  cross-shard commit atomic: until it exists every shard can still undo,
  once it exists every shard must (and, being in-memory, trivially can)
  complete.

A participant votes no by raising — or by a ``prepare_veto`` hook returning
a reason, which is how tests and fault-injection exercise the abort path —
and the coordinator turns any veto into a :class:`TwoPhaseCommitError`
after which the engine aborts on *every* touched shard, prepared or not.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import TwoPhaseCommitError
from repro.txn.recovery import RecoveryManager


@dataclass(frozen=True)
class CommitDecision:
    """One entry of the coordinator's global decision log."""

    txn: int
    verdict: str  # "commit" or "abort"
    shards: tuple[int, ...]

    @property
    def cross_shard(self) -> bool:
        """Whether the transaction spanned more than one shard."""
        return len(self.shards) > 1


class ShardParticipant:
    """One shard's side of the protocol: its undo log and prepared set."""

    def __init__(self, shard_id: int, recovery: RecoveryManager) -> None:
        self.shard_id = shard_id
        self._recovery = recovery
        self._prepared: set[int] = set()
        #: Fault-injection hook: return a reason string to veto a prepare
        #: (``None`` approves).  Exists so tests can force the abort path of
        #: a cross-shard commit without simulating hardware failure.
        self.prepare_veto: Callable[[int], str | None] | None = None

    def prepare(self, txn: int) -> None:
        """Phase one: freeze the before-image log and vote.

        An in-memory shard can always complete once the decision is logged,
        so the only no-vote source is the ``prepare_veto`` hook.

        Raises:
            TwoPhaseCommitError: this shard votes no.
        """
        if self.prepare_veto is not None:
            reason = self.prepare_veto(txn)
            if reason is not None:
                raise TwoPhaseCommitError(
                    f"shard {self.shard_id} vetoed prepare of transaction "
                    f"{txn}: {reason}", shard=self.shard_id, txn=txn)
        self._prepared.add(txn)

    def commit(self, txn: int) -> None:
        """Phase two: the global decision exists — discard the undo log."""
        self._recovery.forget(txn)
        self._prepared.discard(txn)

    def abort(self, txn: int) -> None:
        """Restore this shard to its before-images (prepared or not)."""
        self._recovery.undo(txn)
        self._prepared.discard(txn)

    def is_prepared(self, txn: int) -> bool:
        """Whether ``txn`` is sitting between phase one and phase two here."""
        return txn in self._prepared

    @property
    def recovery(self) -> RecoveryManager:
        """The shard-local undo log this participant manages."""
        return self._recovery


class TwoPhaseCommitCoordinator:
    """Drives prepare/commit/abort over the touched participants."""

    def __init__(self, participants: Sequence[ShardParticipant]) -> None:
        self._participants = tuple(participants)
        self._decisions: list[CommitDecision] = []
        self._mutex = threading.Lock()

    # -- the protocol ------------------------------------------------------------

    def prepare(self, txn: int, shards: Sequence[int]) -> None:
        """Phase one on every touched shard, in shard order.

        Raises:
            TwoPhaseCommitError: some shard voted no.  Shards prepared before
                the veto stay prepared; the caller must abort the transaction
                on every touched shard (prepared participants undo exactly
                like unprepared ones).
        """
        for shard_id in shards:
            self._participants[shard_id].prepare(txn)

    def record_commit(self, txn: int, shards: Sequence[int]) -> CommitDecision:
        """Append the global commit record — the transaction's serialisation
        point.  The engine calls this under its commit mutex, after every
        vote and before any phase-two work."""
        return self._record(txn, "commit", shards)

    def complete_commit(self, txn: int, shards: Sequence[int]) -> None:
        """Phase two: discard every touched shard's undo log."""
        for shard_id in shards:
            self._participants[shard_id].commit(txn)

    def abort(self, txn: int, shards: Sequence[int]) -> CommitDecision:
        """Undo on every touched shard (before-images restored), log the decision."""
        for shard_id in shards:
            self._participants[shard_id].abort(txn)
        return self._record(txn, "abort", shards)

    # -- introspection -----------------------------------------------------------

    @property
    def participants(self) -> tuple[ShardParticipant, ...]:
        """The per-shard participants, indexed by shard id."""
        return self._participants

    @property
    def decisions(self) -> tuple[CommitDecision, ...]:
        """The global decision log, in decision order."""
        with self._mutex:
            return tuple(self._decisions)

    def decision_for(self, txn: int) -> CommitDecision | None:
        """The recorded outcome of ``txn``, or ``None`` while undecided."""
        with self._mutex:
            for decision in reversed(self._decisions):
                if decision.txn == txn:
                    return decision
        return None

    # -- internals ---------------------------------------------------------------

    def _record(self, txn: int, verdict: str,
                shards: Sequence[int]) -> CommitDecision:
        decision = CommitDecision(txn=txn, verdict=verdict,
                                  shards=tuple(sorted(shards)))
        with self._mutex:
            self._decisions.append(decision)
        return decision
