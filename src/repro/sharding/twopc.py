"""Two-phase commit across store shards.

A transaction that wrote on more than one shard must still commit or abort
atomically.  The pieces:

* :class:`ShardParticipant` — one per shard.  ``prepare`` validates and
  freezes the shard's before-image log for the transaction (phase one) and
  votes; ``commit`` discards that log (phase two); ``abort`` replays it,
  restoring the shard to its before-images whether or not the shard had
  already prepared.
* :class:`TwoPhaseCommitCoordinator` — collects the votes of every touched
  shard, and keeps the **global decision log**: one
  :class:`CommitDecision` per transaction outcome.  The engine appends the
  commit decision while holding its commit mutex, *between* phase one and
  phase two — that single record is the serialisation point that makes a
  cross-shard commit atomic: until it exists every shard can still undo,
  once it exists every shard must complete.

With durability on, the protocol earns its classical meaning.  A
participant's ``prepare`` appends the transaction's redo images (the
after-values of exactly the TAV-projected fields its undo records name — at
prepare time strict 2PL makes those the final values) and a ``PREPARED``
marker to the shard's write-ahead log, then barriers it (fsync under the
``fsync`` policy) *before* voting yes — the durable promise behind the
vote.  The coordinator mirrors every decision into a durable
:class:`~repro.wal.log.DecisionLog`; the commit record is barriered before
phase two begins, and recovery resolves in-doubt transactions against that
file by **presumed abort**: no commit record ⇒ the transaction never
happened.

A participant votes no by raising — or by a ``prepare_veto`` hook returning
a reason, which is how tests and fault-injection exercise the abort path —
and the coordinator turns any veto into a :class:`TwoPhaseCommitError`
after which the engine aborts on *every* touched shard, prepared or not.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import ParticipantUnavailable, TwoPhaseCommitError
from repro.sharding.participant import ParticipantClient
from repro.txn.recovery import RecoveryManager
from repro.wal.log import DecisionLog, WriteAheadLog
from repro.wal.records import PreparedMarker, RedoImage


@dataclass(frozen=True)
class CommitDecision:
    """One entry of the coordinator's global decision log."""

    txn: int
    verdict: str  # "commit" or "abort"
    shards: tuple[int, ...]

    @property
    def cross_shard(self) -> bool:
        """Whether the transaction spanned more than one shard."""
        return len(self.shards) > 1


class ShardParticipant(ParticipantClient):
    """The in-process participant: the shard's undo log and prepared set."""

    def __init__(self, shard_id: int, recovery: RecoveryManager,
                 wal: WriteAheadLog | None = None) -> None:
        self.shard_id = shard_id
        self._recovery = recovery
        self._wal = wal
        self._prepared: set[int] = set()
        #: Fault-injection hook: return a reason string to veto a prepare
        #: (``None`` approves).  Exists so tests can force the abort path of
        #: a cross-shard commit without simulating hardware failure.
        self.prepare_veto: Callable[[int], str | None] | None = None

    def prepare(self, txn: int, trace: object = None) -> None:
        """Phase one: flush this shard's log for ``txn``, then vote.

        With a write-ahead log attached, the vote is made durable first:
        redo images for every projection the transaction logged here, a
        ``PREPARED`` marker, and a barrier (fsync under the ``fsync``
        policy).  Only then is yes promised — after this returns, the shard
        can always complete the commit from disk alone.

        ``trace`` is ignored in process: the coordinator's own prepare span
        already times this call, and there is no process hop to attribute.
        The remote participant client forwards it to the worker instead.

        Raises:
            TwoPhaseCommitError: this shard votes no.
        """
        if self.prepare_veto is not None:
            reason = self.prepare_veto(txn)
            if reason is not None:
                raise TwoPhaseCommitError(
                    f"shard {self.shard_id} vetoed prepare of transaction "
                    f"{txn}: {reason}", shard=self.shard_id, txn=txn)
        if self._wal is not None:
            for oid, values in self._recovery.redo_images(txn):
                self._wal.append(RedoImage(txn=txn, oid=oid, values=values))
            self._wal.append(PreparedMarker(txn=txn))
            self._wal.barrier()
        self._prepared.add(txn)

    def commit(self, txn: int, trace: object = None) -> None:
        """Phase two: the global decision exists — discard the undo log."""
        self._recovery.forget(txn)
        self._prepared.discard(txn)

    def abort(self, txn: int, trace: object = None) -> None:
        """Restore this shard to its before-images (prepared or not)."""
        self._recovery.undo(txn)
        self._prepared.discard(txn)

    def is_prepared(self, txn: int) -> bool:
        """Whether ``txn`` is sitting between phase one and phase two here."""
        return txn in self._prepared

    @property
    def recovery(self) -> RecoveryManager:
        """The shard-local undo log this participant manages."""
        return self._recovery

    @property
    def wal(self) -> WriteAheadLog | None:
        """The shard's write-ahead log, when durability is on."""
        return self._wal


class TwoPhaseCommitCoordinator:
    """Drives prepare/commit/abort over the touched participants."""

    def __init__(self, participants: Sequence[ParticipantClient],
                 decision_log: DecisionLog | None = None) -> None:
        self._participants = tuple(participants)
        self._decisions: list[CommitDecision] = []
        self._decision_log = decision_log
        self._mutex = threading.Lock()
        #: Phase-two/abort calls that found their participant unreachable.
        #: The decision was already durable, so these are survivable — the
        #: restarted worker resolves itself against the decision log — but
        #: they are counted so operators (and tests) can see them.
        self.unavailable_completions = 0
        #: Observability hook: called once per unavailable completion, after
        #: the counter above.  The engine wires it to
        #: ``EngineMetrics.record_unavailable`` so the count reaches the
        #: ``MetricsSnapshot`` reply instead of staying engine-internal.
        self.on_unavailable: Callable[[], None] | None = None

    # -- the protocol ------------------------------------------------------------

    def prepare(self, txn: int, shards: Sequence[int], *,
                tracer: object = None, context: object = None) -> None:
        """Phase one on every touched shard, in shard order.

        With a ``tracer`` and a parent ``context`` (the engine's commit
        span), each participant's vote is wrapped in its own
        ``prepare:shardN`` span, and a child context parented to that span
        rides the prepare RPC so a remote worker's own span joins the tree.

        Raises:
            TwoPhaseCommitError: some shard voted no.  Shards prepared before
                the veto stay prepared; the caller must abort the transaction
                on every touched shard (prepared participants undo exactly
                like unprepared ones).
        """
        if tracer is None or context is None:
            for shard_id in shards:
                self._participants[shard_id].prepare(txn)
            return
        for shard_id in shards:
            with tracer.span(f"prepare:shard{shard_id}", context.trace_id,
                             parent=context.parent, category="2pc",
                             args={"txn": txn, "shard": shard_id}) as span:
                self._participants[shard_id].prepare(
                    txn, trace=span.context().to_wire())

    def record_commit(self, txn: int, shards: Sequence[int]) -> CommitDecision:
        """Append the global commit record — the transaction's serialisation
        point.  The engine calls this under its commit mutex, after every
        vote and before any phase-two work.  With a durable decision log the
        record is barriered to disk before this returns: it is the
        durability point too."""
        return self._record(txn, "commit", shards)

    def wait_commit_durable(self) -> None:
        """Block until every commit record appended so far is durable.

        With group commit the decision log batches its fsyncs; the engine
        calls this *outside* its commit mutex, after :meth:`record_commit`,
        so concurrent committers share one barrier instead of paying one
        fsync each.  Without group commit (or without a durable log at all)
        the record was already durable when ``record_commit`` returned and
        this is a no-op.
        """
        if self._decision_log is not None:
            self._decision_log.wait_durable()

    def complete_commit(self, txn: int, shards: Sequence[int],
                        trace: object = None) -> None:
        """Phase two: discard every touched shard's undo log.

        An unreachable participant does not fail the commit — the decision
        is already durable, so the transaction *is* committed; the dead
        worker redoes it from its own WAL and the decision log when it
        restarts (per-participant recovery).  ``trace`` (the engine's
        phase-two span context) is forwarded so remote workers parent their
        commit spans to it.
        """
        for shard_id in shards:
            try:
                self._participants[shard_id].commit(txn, trace=trace)
            except ParticipantUnavailable:
                self._note_unavailable()

    def abort(self, txn: int, shards: Sequence[int],
              trace: object = None) -> CommitDecision:
        """Undo on every touched shard (before-images restored), log the decision.

        An unreachable participant is tolerated: presumed abort means the
        restarted worker undoes the transaction on its own once it finds no
        commit record for it.
        """
        for shard_id in shards:
            try:
                self._participants[shard_id].abort(txn, trace=trace)
            except ParticipantUnavailable:
                self._note_unavailable()
        return self._record(txn, "abort", shards)

    def _note_unavailable(self) -> None:
        with self._mutex:
            self.unavailable_completions += 1
        if self.on_unavailable is not None:
            self.on_unavailable()

    # -- introspection -----------------------------------------------------------

    @property
    def participants(self) -> tuple[ParticipantClient, ...]:
        """The per-shard participants, indexed by shard id."""
        return self._participants

    @property
    def decisions(self) -> tuple[CommitDecision, ...]:
        """The global decision log, in decision order."""
        with self._mutex:
            return tuple(self._decisions)

    @property
    def decision_log(self) -> DecisionLog | None:
        """The durable decision log, when durability is on."""
        return self._decision_log

    def decision_for(self, txn: int) -> CommitDecision | None:
        """The recorded outcome of ``txn``, or ``None`` while undecided."""
        with self._mutex:
            for decision in reversed(self._decisions):
                if decision.txn == txn:
                    return decision
        return None

    # -- internals ---------------------------------------------------------------

    def _record(self, txn: int, verdict: str,
                shards: Sequence[int]) -> CommitDecision:
        decision = CommitDecision(txn=txn, verdict=verdict,
                                  shards=tuple(sorted(shards)))
        if self._decision_log is not None:
            # Durable before visible: once the in-memory log lists a commit,
            # the disk already knows (abort records ride the write-through
            # flush only — presumed abort does not need them).
            self._decision_log.append(decision.txn, decision.verdict,
                                      decision.shards)
        with self._mutex:
            self._decisions.append(decision)
        return decision
