"""Crash injection: SIGKILL an engine mid-workload, then recover and audit.

Durability claims are only as good as the crashes they survive, so this
module makes crashing reproducible:

* ``run`` mode (the child) builds a sharded banking store, starts an engine
  with durability on and lets worker threads stream balanced transfers
  forever — it never exits on its own, it exists to be killed;
* ``crash`` mode (the orchestrator, the default) spawns the child, waits
  until it reports ``READY``, sleeps a randomised interval and SIGKILLs it,
  then runs a :class:`~repro.wal.recovery_runner.RecoveryRunner` over the
  directory the corpse left behind and audits the recovered store:

  1. **conservation** — every transfer moves money between two accounts, so
     the recovered balances must sum to exactly the initial endowment (a
     torn transfer, one leg applied, breaks this immediately);
  2. **presumed abort** — no in-doubt transaction's writes survive without
     a commit record (checked field-by-field against the logs' oldest
     before-images, independently of the replay code).

The orchestrator writes a JSON report (recovery statistics plus both
verdicts) and exits non-zero on any violation, which is what the CI
recovery-smoke job runs::

    python -m repro.wal.crashtest --dir /tmp/crash --shards 4 --threads 8 \
        --durability fsync --report recovery-report.json

The pytest fixture in ``tests/durability/test_crash_injection.py`` drives
the same two halves programmatically with randomised kill points.
"""

from __future__ import annotations

import argparse
import json
import os
import queue
import random
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Sequence

from repro.core.compiler import compile_schema
from repro.schema import banking_schema
from repro.wal.durability import MODES, Durability

BALANCE = 1000.0


def account_oids(store, accounts: int):
    """The OIDs of the child's accounts (creation order, so deterministic)."""
    return store.extent("CheckingAccount")[:accounts]


def build_store(shards: int, accounts: int):
    """The child's store: ``accounts`` checking accounts over ``shards``."""
    from repro.sharding.router import HashShardRouter
    from repro.sharding.store import ShardedObjectStore

    schema = banking_schema()
    store = ShardedObjectStore(schema, HashShardRouter(shards))
    for index in range(accounts):
        store.create("CheckingAccount", balance=BALANCE,
                     owner=f"holder-{index}", active=True)
    return schema, store


# ---------------------------------------------------------------------------
# The child: run transfers until killed
# ---------------------------------------------------------------------------


def run_until_killed(arguments: argparse.Namespace) -> int:
    """Stream balanced transfers forever; the parent's SIGKILL is the exit."""
    from repro.engine.engine import Engine
    from repro.txn.protocols import TAVProtocol

    schema, store = build_store(arguments.shards, arguments.accounts)
    compiled = compile_schema(schema)
    durability = Durability(mode=arguments.durability, directory=arguments.dir,
                            checkpoint_interval=arguments.checkpoint_interval)
    oids = account_oids(store, arguments.accounts)
    engine = Engine(TAVProtocol(compiled, store), durability=durability,
                    default_lock_timeout=5.0)

    def teller(seed: int) -> None:
        rng = random.Random(seed)
        while True:
            source, target = rng.sample(oids, 2)
            amount = float(rng.randint(1, 100))

            def transfer(session) -> None:
                session.call(source, "deposit", -amount)
                session.call(target, "deposit", amount)

            engine.run_transaction(transfer, label="transfer")

    for index in range(arguments.threads):
        thread = threading.Thread(target=teller, args=(arguments.seed + index,),
                                  daemon=True, name=f"teller-{index}")
        thread.start()
    print(f"READY total={arguments.accounts * BALANCE}", flush=True)
    while True:  # pragma: no cover - only SIGKILL ends this
        time.sleep(3600)


# ---------------------------------------------------------------------------
# The orchestrator: spawn, kill, recover, audit
# ---------------------------------------------------------------------------


def spawn_child(arguments: argparse.Namespace) -> subprocess.Popen:
    """Start the ``run`` half as a subprocess that inherits this package."""
    package_root = Path(__file__).resolve().parent.parent.parent
    environment = dict(os.environ)
    environment["PYTHONPATH"] = os.pathsep.join(
        [str(package_root)] + ([environment["PYTHONPATH"]]
                               if environment.get("PYTHONPATH") else []))
    command = [sys.executable, "-m", "repro.wal.crashtest", "run",
               "--dir", str(arguments.dir),
               "--shards", str(arguments.shards),
               "--threads", str(arguments.threads),
               "--accounts", str(arguments.accounts),
               "--durability", arguments.durability,
               "--checkpoint-interval", str(arguments.checkpoint_interval),
               "--seed", str(arguments.seed)]
    return subprocess.Popen(command, env=environment, stdout=subprocess.PIPE,
                            text=True)


def wait_for_ready(child: subprocess.Popen, timeout: float = 60.0) -> None:
    """Block until the child prints READY (its threads are streaming).

    The pipe is read from a helper thread so the timeout holds even when
    the child wedges *without* printing or exiting — a bare ``readline()``
    would block past any deadline checked between lines.
    """
    assert child.stdout is not None
    ready = threading.Event()

    def read() -> None:
        for line in child.stdout:
            if line.startswith("READY"):
                ready.set()
                return

    reader = threading.Thread(target=read, daemon=True, name="crashtest-ready")
    reader.start()
    if ready.wait(timeout):
        return
    if child.poll() is not None:
        raise RuntimeError(f"crashtest child died before READY "
                           f"(exit {child.returncode})")
    raise RuntimeError(f"crashtest child never reported READY "
                       f"within {timeout}s")


def recover_and_audit(durability: Durability, shards: int,
                      accounts: int) -> dict:
    """Run recovery over the directory and evaluate both invariants."""
    from repro.sharding.router import HashShardRouter
    from repro.wal.recovery_runner import RecoveryRunner

    schema = banking_schema()
    runner = RecoveryRunner(durability, schema, router=HashShardRouter(shards))
    result = runner.recover()
    oids = account_oids(result.store, accounts)
    balances = [result.store.read_field(oid, "balance") for oid in oids]
    expected = accounts * BALANCE
    violations = RecoveryRunner.presumed_abort_violations(result)
    return {
        "report": result.report.as_document(),
        "accounts": len(oids),
        "total_balance": sum(balances),
        "expected_balance": expected,
        "conserved": sum(balances) == expected and len(oids) == accounts,
        "presumed_abort_violations": violations,
        "ok": (sum(balances) == expected and len(oids) == accounts
               and not violations),
    }


def crash_once(arguments: argparse.Namespace) -> dict:
    """One full cycle: spawn, randomised kill, recover, audit."""
    child = spawn_child(arguments)
    try:
        wait_for_ready(child)
        rng = random.Random(arguments.seed)
        delay = rng.uniform(arguments.min_run, arguments.max_run)
        time.sleep(delay)
        child.send_signal(signal.SIGKILL)
        child.wait(timeout=30)
    finally:
        if child.poll() is None:  # pragma: no cover - cleanup on failure
            child.kill()
            child.wait(timeout=30)
        if child.stdout is not None:
            child.stdout.close()
    durability = Durability(mode=arguments.durability, directory=arguments.dir)
    audit = recover_and_audit(durability, arguments.shards, arguments.accounts)
    audit["killed_after_s"] = round(delay, 3)
    return audit


# ---------------------------------------------------------------------------
# Command line
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.wal.crashtest",
        description="SIGKILL an engine mid-workload and verify recovery.")
    parser.add_argument("mode", nargs="?", choices=("crash", "run"),
                        default="crash",
                        help="'crash' orchestrates (default); 'run' is the "
                             "child that gets killed")
    parser.add_argument("--dir", required=True,
                        help="durability directory (fresh for 'run'; the "
                             "crashed state for recovery)")
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--threads", type=int, default=8)
    parser.add_argument("--accounts", type=int, default=16)
    parser.add_argument("--durability", choices=[m for m in MODES if m != "off"],
                        default="fsync")
    parser.add_argument("--checkpoint-interval", type=float, default=0.1,
                        help="child's background checkpoint cadence in "
                             "seconds (default: 0.1, so checkpoints race "
                             "the kill)")
    parser.add_argument("--seed", type=int, default=1993,
                        help="seed for the workload and the kill point")
    parser.add_argument("--min-run", type=float, default=0.1,
                        help="earliest kill after READY, seconds")
    parser.add_argument("--max-run", type=float, default=1.0,
                        help="latest kill after READY, seconds")
    parser.add_argument("--report", metavar="PATH", default=None,
                        help="also write the audit as JSON")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    arguments = build_parser().parse_args(argv)
    if arguments.mode == "run":
        return run_until_killed(arguments)
    audit = crash_once(arguments)
    print(json.dumps(audit, indent=2))
    if arguments.report:
        Path(arguments.report).write_text(json.dumps(audit, indent=2) + "\n",
                                          encoding="utf-8")
    if audit["ok"]:
        print(f"\nrecovery OK: {audit['accounts']} accounts conserve "
              f"{audit['total_balance']}, "
              f"{len(audit['report']['winners'])} transaction(s) redone, "
              f"{len(audit['report']['in_doubt'])} in-doubt presumed aborted "
              f"(killed after {audit['killed_after_s']}s)")
        return 0
    print("\nrecovery VIOLATION — see the report above")
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
