"""Durability: write-ahead logging, checkpoints and crash recovery.

The paper's recovery idea (§3) — transitive access vectors double as
projection patterns, so the ``Write`` entries of an operation's TAV are
exactly the before-image a log record needs — stops being a footnote and
becomes a subsystem here:

* :mod:`repro.wal.records` — framed, checksummed log records (undo/redo
  images projected by the TAV, prepare markers, commit decisions);
* :class:`~repro.wal.log.WriteAheadLog` — one append-only, write-through
  file per shard, with barrier (fsync) points and atomic truncation;
* :class:`~repro.wal.log.DecisionLog` — the 2PC coordinator's decision log
  as a durable file; the commit record is the durability point;
* :class:`~repro.wal.durability.Durability` — the ``off``/``lazy``/``fsync``
  configuration threaded through engine → store → participants;
* :class:`~repro.wal.checkpoint.CheckpointManager` — fuzzy per-shard
  snapshots (taken under the shard mutex, noting the active-transaction
  low-water mark) that truncate the WAL behind them;
* :class:`~repro.wal.recovery_runner.RecoveryRunner` — checkpoint + WAL
  replay with **presumed abort** for in-doubt transactions: no commit
  record in the decision log ⇒ undo.

``python -m repro.wal.crashtest`` is the crash-injection harness: it
SIGKILLs an engine mid-workload and verifies the recovered store.
"""

from repro.wal.durability import Durability
from repro.wal.log import DecisionLog, WriteAheadLog, read_records
from repro.wal.checkpoint import CheckpointManager, ShardCheckpoint
from repro.wal.records import (
    DecisionRecord,
    EscrowDelta,
    PreparedMarker,
    RedoImage,
    UndoImage,
    WALRecord,
)
from repro.wal.recovery_runner import RecoveryReport, RecoveryResult, RecoveryRunner

__all__ = [
    "CheckpointManager",
    "DecisionLog",
    "DecisionRecord",
    "Durability",
    "EscrowDelta",
    "PreparedMarker",
    "RecoveryReport",
    "RecoveryResult",
    "RecoveryRunner",
    "RedoImage",
    "ShardCheckpoint",
    "UndoImage",
    "WALRecord",
    "WriteAheadLog",
    "read_records",
]
