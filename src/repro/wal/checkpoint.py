"""Fuzzy checkpoints: bound the write-ahead log without stopping the world.

A checkpoint makes one shard's recovery independent of most of its log: it
snapshots the shard's instances to a file and then shrinks the shard's
write-ahead log to just the records of transactions still in flight (the
active-transaction low-water mark) — everything older is either reflected
in the snapshot (committed and aborted work alike) or owned by a
transaction the rewrite carries forward.

The snapshot is *fuzzy*: it is taken under the shard's structural mutex (so
membership cannot tear) but field writes do not take that mutex, so the
image may contain uncommitted values from transactions running right
through the checkpoint.  Two orderings make that safe:

* the write-ahead rule — a before-image reaches the operating system, and
  the in-memory undo log grows, *under the WAL's append mutex and before
  the store write it covers*.  The checkpointer holds that same mutex
  across its keep-read, snapshot and rewrite, so any dirty value the
  snapshot can contain belongs to a transaction whose records are already
  in the log **and** which the keep-read sees as pending — its undo images
  are exactly what the rewrite preserves;
* install order — the new snapshot file is fsynced and renamed into place
  *before* the log is rewritten.  A crash between the two leaves a new
  snapshot with an over-complete log, and replaying too many records is
  idempotent (redo rewrites committed values with themselves, undo rewrites
  restored values with themselves); the reverse order could drop redo
  records the old snapshot still needed.

The checkpoint pass also *compacts the decision log*: once the per-shard
rewrites have run, any decided transaction that no shard WAL still mentions
is invisible to recovery (its effects are entirely inside the snapshots), so
its decision record is dead weight and is dropped.  The ordering that makes
this safe against concurrent commits is documented at
:meth:`_compact_decisions`.

:class:`CheckpointManager` also owns the optional background cadence: a
daemon thread calling :meth:`checkpoint` every ``interval`` seconds, started
by the engine when its :class:`~repro.wal.durability.Durability` asks for
one.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence

from repro.objects.oid import OID
from repro.wal.durability import Durability
from repro.wal.log import DecisionLog, WriteAheadLog, fsync_directory
from repro.wal.records import encode_value

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.sharding.recovery import ShardedRecoveryManager
    from repro.sharding.router import ShardRouter


@dataclass(frozen=True)
class ShardCheckpoint:
    """What one shard's checkpoint pass did."""

    shard_id: int
    instances: int
    active: tuple[int, ...]
    records_kept: int
    records_dropped: int


def write_checkpoint_file(path, shard_id: int, active: Sequence[int],
                          snapshot: Sequence[tuple[OID, str, dict[str, Any]]],
                          *, fsync: bool, last_lsn: int = 0) -> None:
    """Atomically install one shard's snapshot file (tmp + fsync + rename).

    ``last_lsn`` is the highest WAL stamp already reflected in the snapshot.
    Escrow deltas are applied atomically with their append (both under the
    WAL mutex the checkpointer holds), so the boundary is exact: a delta
    record stamped at or below ``last_lsn`` is inside the snapshot, one
    above it is not.
    """
    document = {
        "shard": shard_id,
        "active": sorted(active),
        "last_lsn": last_lsn,
        "max_oid": max((oid.number for oid, _, _ in snapshot), default=0),
        "instances": [
            [class_name, oid.number,
             {name: encode_value(value) for name, value in values.items()}]
            for oid, class_name, values in snapshot
        ],
    }
    replacement = path.with_suffix(path.suffix + ".tmp")
    with open(replacement, "w", encoding="utf-8") as handle:
        json.dump(document, handle, separators=(",", ":"))
        handle.write("\n")
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    os.replace(replacement, path)
    if fsync:
        fsync_directory(path.parent)


def read_checkpoint_file(path) -> dict[str, Any] | None:
    """Load a shard's snapshot document, or ``None`` when none was taken.

    A half-written file cannot be observed (installation is an atomic
    rename), but a syntactically broken one is treated as absent rather
    than fatal — recovery then starts that shard from an empty base plus
    whatever the log still holds.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except FileNotFoundError:
        return None
    except json.JSONDecodeError:  # pragma: no cover - needs disk corruption
        return None


class CheckpointManager:
    """Snapshots each shard's store and truncates the WAL behind it."""

    def __init__(self, store, router: "ShardRouter",
                 recovery: "ShardedRecoveryManager",
                 wals: Sequence[WriteAheadLog],
                 durability: Durability,
                 decision_log: "DecisionLog | None" = None,
                 extra_pending: "Callable[[int], Iterable[int]] | None" = None) -> None:
        self._store = store
        self._router = router
        self._recovery = recovery
        self._wals = tuple(wals)
        self._durability = durability
        self._decision_log = decision_log
        #: Additional per-shard pending transactions the keep-read must
        #: honour — the escrow ledger's, whose deltas have no undo images
        #: and so are invisible to the recovery manager's pending set.
        self._extra_pending = extra_pending
        self._checkpoint_mutex = threading.Lock()
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self.checkpoints_taken = 0
        #: Decision records dropped by compaction over this manager's life.
        self.decisions_dropped = 0

    # -- taking checkpoints ------------------------------------------------------

    def checkpoint(self) -> list[ShardCheckpoint]:
        """Checkpoint every shard, one at a time; returns what each did.

        Serialised against itself (a manual call racing the background
        thread just queues), never against the workload — writers only ever
        block for the duration of one shard's snapshot+rewrite.
        """
        with self._checkpoint_mutex:
            results = [self._checkpoint_shard(shard_id)
                       for shard_id in range(len(self._wals))]
            self._compact_decisions()
            self.checkpoints_taken += 1
            return results

    def _checkpoint_shard(self, shard_id: int) -> ShardCheckpoint:
        wal = self._wals[shard_id]
        manager = self._recovery.shard_manager(shard_id)
        with wal.mutex:
            # Appends — and the in-memory log growth paired with them — are
            # blocked, so keep-read and snapshot see one consistent world:
            # every transaction whose dirty values the snapshot may contain
            # is pending here.
            keep = set(manager.pending_transactions())
            if self._extra_pending is not None:
                keep.update(self._extra_pending(shard_id))
            snapshot = self._snapshot_shard(shard_id)
            write_checkpoint_file(self._durability.checkpoint_path(shard_id),
                                  shard_id, keep, snapshot,
                                  fsync=self._durability.fsync,
                                  last_lsn=wal.last_lsn)
            kept, dropped = wal.rewrite(lambda record: record.txn in keep)
            return ShardCheckpoint(shard_id=shard_id, instances=len(snapshot),
                                   active=tuple(sorted(keep)),
                                   records_kept=kept, records_dropped=dropped)

    def _compact_decisions(self) -> None:
        """Drop decisions no shard WAL still mentions (bounds the log).

        The safety argument is pure ordering.  Step 1 snapshots the set of
        *decided* transactions; step 2 scans every shard WAL for the
        transactions still mentioned; only ``decided - mentioned`` is
        dropped.  A transaction's WAL records (undo images, redo images,
        PREPARED) are all appended *before* its decision exists, so:

        * a transaction deciding after step 1 is not in ``decided`` — its
          commit record survives no matter what the scan sees;
        * a transaction in ``decided`` whose records are absent from every
          WAL at step 2 can never gain records again (it stopped writing
          when it decided, and the scan ran *after* the decision), so its
          effects are fully inside the checkpoint snapshots — both the redo
          a commit would need and the undo a presumed abort would need are
          moot, and the decision is dead weight.
        """
        if self._decision_log is None:
            return
        decided = {record.txn for record in self._decision_log.decisions()}
        if not decided:
            return
        mentioned: set[int] = set()
        for wal in self._wals:
            mentioned.update(record.txn for record in wal.records())
        droppable = decided - mentioned
        if droppable:
            _kept, dropped = self._decision_log.compact(droppable)
            self.decisions_dropped += dropped

    def _snapshot_shard(self, shard_id: int) -> list[tuple[OID, str, dict[str, Any]]]:
        """This shard's instances, via the store's native snapshot support.

        A :class:`~repro.sharding.store.ShardedObjectStore` snapshots one
        partition under its own mutex; a plain store (lock sharding over
        unpartitioned data) snapshots everything and filters by the router,
        so each instance still lands in exactly one shard's checkpoint.
        """
        snapshot_shard = getattr(self._store, "snapshot_shard", None)
        if snapshot_shard is not None:
            return snapshot_shard(shard_id)
        return [(oid, class_name, values)
                for oid, class_name, values in self._store.snapshot_instances()
                if self._router.shard_of_oid(oid) == shard_id]

    # -- background cadence ------------------------------------------------------

    def start(self, interval: float) -> None:
        """Run :meth:`checkpoint` every ``interval`` seconds until :meth:`stop`."""
        if self._thread is not None:
            return

        def run() -> None:
            while not self._stop.wait(interval):
                self.checkpoint()

        self._thread = threading.Thread(target=run, name="repro-checkpointer",
                                        daemon=True)
        self._thread.start()

    def stop(self) -> None:
        """Stop the background thread, if any.  Idempotent."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
