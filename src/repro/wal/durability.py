"""The durability configuration threaded through the engine.

One :class:`Durability` value decides, for a whole engine, whether writes
are logged at all and how hard the log pushes them to disk:

* ``off`` — no files, no logging; the engine behaves exactly as before this
  subsystem existed (undo logs stay in memory only);
* ``lazy`` — every log append is written through to the operating system
  (survives the process being killed) but never fsynced (a power failure
  can lose the tail);
* ``fsync`` — additionally, a prepare vote and a commit decision fsync
  before they return, so a committed transaction survives power loss.

The same value also names the file layout inside :attr:`directory` (one WAL
and one checkpoint per shard, one decision log, one metadata file) and the
checkpoint cadence.  The engine creates the directory, refuses one that
already holds another engine's state (that state is what a
:class:`~repro.wal.recovery_runner.RecoveryRunner` consumes — appending to
it would corrupt the very log recovery needs), and threads the per-shard
logs through the sharded recovery manager into the 2PC participants.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.errors import WALError

#: The accepted durability modes, weakest first.
MODES = ("off", "lazy", "fsync")


@dataclass(frozen=True)
class Durability:
    """How (and whether) an engine makes its work survive a crash."""

    mode: str = "off"
    directory: str | Path | None = None
    #: Seconds between automatic fuzzy checkpoints; ``None`` checkpoints
    #: only on demand (:meth:`repro.engine.engine.Engine.checkpoint`).
    checkpoint_interval: float | None = None
    #: Group commit: batch decision-log fsyncs into one barrier per this
    #: many milliseconds.  ``None``/``0`` keeps one fsync per commit.  Only
    #: meaningful under ``fsync`` (lazy barriers do not fsync anyway); it
    #: trades a bounded ack latency for amortising the dominant fsync cost.
    group_commit_ms: float | None = None

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise WALError(f"unknown durability mode {self.mode!r}; "
                           f"expected one of {', '.join(MODES)}")
        if self.enabled and self.directory is None:
            raise WALError(f"durability mode {self.mode!r} needs a directory")
        if self.checkpoint_interval is not None and self.checkpoint_interval <= 0:
            raise WALError("checkpoint_interval must be positive seconds")
        if self.group_commit_ms is not None and self.group_commit_ms < 0:
            raise WALError("group_commit_ms must be non-negative milliseconds")

    @property
    def group_commit_window(self) -> float | None:
        """The group-commit window in *seconds*, or ``None`` when off."""
        if not self.group_commit_ms:
            return None
        return self.group_commit_ms / 1000.0

    # -- constructors -----------------------------------------------------------

    @classmethod
    def off(cls) -> "Durability":
        """No durability (the default)."""
        return cls(mode="off")

    @classmethod
    def lazy(cls, directory: str | Path, *,
             checkpoint_interval: float | None = None) -> "Durability":
        """Write-through logging without fsync (survives SIGKILL)."""
        return cls(mode="lazy", directory=directory,
                   checkpoint_interval=checkpoint_interval)

    @classmethod
    def fsynced(cls, directory: str | Path, *,
                checkpoint_interval: float | None = None) -> "Durability":
        """Logging with fsync barriers at prepare and commit (survives power loss)."""
        return cls(mode="fsync", directory=directory,
                   checkpoint_interval=checkpoint_interval)

    # -- derived ----------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Whether any logging happens at all."""
        return self.mode != "off"

    @property
    def fsync(self) -> bool:
        """Whether barriers (prepare, commit decision, checkpoints) fsync."""
        return self.mode == "fsync"

    # -- file layout ------------------------------------------------------------

    @property
    def root(self) -> Path:
        """The durability directory as a :class:`~pathlib.Path`."""
        if self.directory is None:
            raise WALError("durability is off; there is no directory")
        return Path(self.directory)

    def wal_path(self, shard_id: int) -> Path:
        """Where shard ``shard_id`` keeps its write-ahead log."""
        return self.root / f"shard-{shard_id}.wal"

    def checkpoint_path(self, shard_id: int) -> Path:
        """Where shard ``shard_id`` keeps its latest checkpoint snapshot."""
        return self.root / f"shard-{shard_id}.ckpt"

    @property
    def decisions_path(self) -> Path:
        """Where the coordinator keeps its durable decision log."""
        return self.root / "decisions.log"

    @property
    def meta_path(self) -> Path:
        """Where the engine records the layout (shard count, mode)."""
        return self.root / "wal-meta.json"

    # -- directory management ---------------------------------------------------

    def prepare_directory(self, num_shards: int) -> None:
        """Create the directory, refuse leftover state, write the metadata.

        Raises:
            WALError: the directory already contains WAL/checkpoint/decision
                files.  That state belongs to a crashed (or live!) engine;
                run a :class:`~repro.wal.recovery_runner.RecoveryRunner`
                over it — or point this engine at a fresh directory.
        """
        root = self.root
        root.mkdir(parents=True, exist_ok=True)
        leftovers = sorted(path.name for path in root.iterdir()
                           if path.suffix in (".wal", ".ckpt")
                           or path.name == "decisions.log")
        if leftovers:
            raise WALError(
                f"durability directory {root} already holds engine state "
                f"({', '.join(leftovers[:4])}{'...' if len(leftovers) > 4 else ''}); "
                "recover it with RecoveryRunner or use a fresh directory")
        self.meta_path.write_text(json.dumps(
            {"shards": num_shards, "mode": self.mode}, indent=2) + "\n",
            encoding="utf-8")
        if self.fsync:
            # The layout file and the directory itself must survive power
            # loss, or recovery cannot even find the shard count.
            from repro.wal.log import fsync_directory

            with open(self.meta_path, "rb") as handle:
                os.fsync(handle.fileno())
            fsync_directory(root)

    def read_meta(self) -> dict:
        """The layout metadata a previous engine wrote (recovery side)."""
        try:
            return json.loads(self.meta_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise WALError(f"no wal-meta.json under {self.root}; "
                           "was an engine ever started here?") from None
