"""The append-only write-ahead log file, and the durable decision log.

:class:`WriteAheadLog` owns one append-only file of framed records (see
:mod:`repro.wal.records`).  Its durability contract has two levels:

* every :meth:`append` is **write-through**: the frame reaches the operating
  system (``file.flush``) before the call returns, so the record survives
  the *process* being killed — which is the ordering the fuzzy checkpoint
  relies on (a store write can only be snapshotted after its before-image
  record is out of user space);
* :meth:`barrier` additionally ``fsync``\\ s when the log was opened with
  ``sync_on_barrier=True`` (the ``fsync`` durability mode), which is what a
  prepare vote and a commit decision call before they count as durable
  against power loss.  In ``lazy`` mode the barrier is the flush alone.

Appends are serialised by an internal re-entrant mutex.  Callers that must
keep a *sequence* of appends atomic with their own bookkeeping (the recovery
manager pairs "append undo record" with "grow the in-memory undo log"; the
checkpointer pairs "snapshot" with "rewrite") hold :attr:`mutex` around the
whole step — that lock is the WAL's one synchronisation point.

:meth:`rewrite` is how checkpoints truncate: the file is re-written to keep
only the records of transactions still in flight, fsynced, and atomically
renamed over the old file while appends are blocked.
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path
from typing import Callable, Iterator

from repro.errors import WALError
from repro.wal.records import (
    DecisionRecord,
    WALRecord,
    decode_frames,
    decode_stamped_frames,
    encode_frame,
)


def fsync_directory(path: str | Path) -> None:
    """fsync a directory so renames/creations inside it survive power loss.

    ``os.replace`` makes an installation atomic against *crashes*, but the
    new directory entry itself lives in the directory's metadata — without
    this, a power failure can persist a file's contents while forgetting its
    name (or keep an old name pointing at a shrunken log while the freshly
    installed snapshot beside it vanishes, inverting the checkpoint's
    install-order invariant).
    """
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def read_records(path: str | Path) -> Iterator[WALRecord]:
    """The records of the log file at ``path``, stopping at a torn tail.

    A missing file reads as empty — an engine that never reached its first
    append is indistinguishable from one that crashed before it.
    """
    try:
        data = Path(path).read_bytes()
    except FileNotFoundError:
        return iter(())
    return decode_frames(data)


def read_stamped_records(path: str | Path) -> Iterator[tuple[int, WALRecord]]:
    """The ``(lsn, record)`` pairs of the log at ``path`` (torn-tail safe).

    Frames appended before LSN stamping existed carry stamp 0; real stamps
    start at 1 and only grow, so a reader can always tell the two apart.
    """
    try:
        data = Path(path).read_bytes()
    except FileNotFoundError:
        return iter(())
    return decode_stamped_frames(data)


class WriteAheadLog:
    """One shard's append-only log of framed, checksummed records."""

    def __init__(self, path: str | Path, *, sync_on_barrier: bool = False) -> None:
        self._path = Path(path)
        self._sync_on_barrier = sync_on_barrier
        self._mutex = threading.RLock()
        existed = self._path.exists()
        self._file = open(self._path, "ab")
        if sync_on_barrier and not existed:
            # Make the new log's directory entry durable: barriers fsync the
            # file descriptor, which does nothing for a name a power failure
            # can still forget.
            fsync_directory(self._path.parent)
        self._bytes_written = 0
        self._closed = False
        # Resume the LSN sequence past whatever the file already holds, so
        # stamps stay monotonic across handle lifetimes (and across
        # rewrites, which preserve the surviving records' original stamps).
        self._next_lsn = max((lsn for lsn, _ in read_stamped_records(self._path)),
                             default=0) + 1
        #: Bumped by every :meth:`rewrite`.  A tailing reader (the
        #: replication shipper) remembers the generation it last read under
        #: and treats a change as "the file under me was truncated" instead
        #: of silently re-reading a rewritten log from a stale offset.
        self._generation = 0
        #: Observability hook: called with the seconds one :meth:`barrier`
        #: took (flush plus any fsync).  The engine and the shard workers
        #: wire this to their ``barrier`` latency histograms.
        self.on_barrier: Callable[[float], None] | None = None
        #: Tail hook: called with ``(lsn, record)`` for every append, under
        #: the append mutex so a tailing reader observes log order.  The
        #: replication shipper wires this to its outbound queue; ``None``
        #: costs nothing.
        self.on_append: Callable[[int, WALRecord], None] | None = None

    # -- writing ----------------------------------------------------------------

    def append(self, record: WALRecord, *, lsn: int | None = None) -> int:
        """Write one record through to the operating system; returns its size.

        The frame is stamped with the next log sequence number before it is
        framed, so the stamp is covered by the frame's checksum.  A standby
        replaying a shipped stream passes the *primary's* stamp as ``lsn``
        so both logs agree on sequence numbers; the counter then advances
        past it.
        """
        with self._mutex:
            if lsn is None:
                lsn = self._next_lsn
            self._next_lsn = max(self._next_lsn, lsn) + 1
            frame = encode_frame(record, lsn=lsn)
            self._file.write(frame)
            self._file.flush()
            self._bytes_written += len(frame)
            hook = self.on_append
            if hook is not None:
                # Under the mutex so a tailing shipper sees appends in log
                # order (the hook only enqueues; it must not block).
                hook(lsn, record)
        return len(frame)

    def barrier(self) -> None:
        """Make everything appended so far durable per the log's sync policy."""
        started = time.perf_counter()
        with self._mutex:
            self._file.flush()
            if self._sync_on_barrier:
                os.fsync(self._file.fileno())
        hook = self.on_barrier
        if hook is not None:
            hook(time.perf_counter() - started)

    def rewrite(self, keep: Callable[[WALRecord], bool]) -> tuple[int, int]:
        """Atomically shrink the log to the records satisfying ``keep``.

        Returns ``(kept, dropped)`` counts.  The new file is written beside
        the old one, fsynced, and renamed into place while the append mutex
        blocks writers; relative record order is preserved, so replay
        semantics are unchanged.  Always fsyncs regardless of the barrier
        policy — a truncated log that lost its tail to a power failure would
        silently forget in-flight transactions the dropped prefix no longer
        covers.
        """
        with self._mutex:
            self._file.flush()
            stamped = list(read_stamped_records(self._path))
            kept = [(lsn, record) for lsn, record in stamped if keep(record)]
            replacement = self._path.with_suffix(self._path.suffix + ".rewrite")
            with open(replacement, "wb") as handle:
                for lsn, record in kept:
                    handle.write(encode_frame(record, lsn=lsn or None))
                handle.flush()
                os.fsync(handle.fileno())
            self._file.close()
            os.replace(replacement, self._path)
            if self._sync_on_barrier:
                fsync_directory(self._path.parent)
            self._file = open(self._path, "ab")
            self._generation += 1
            return len(kept), len(stamped) - len(kept)

    # -- reading ----------------------------------------------------------------

    def records(self) -> list[WALRecord]:
        """Everything durably in the file right now (flushes first)."""
        with self._mutex:
            if not self._closed:
                self._file.flush()
            return list(read_records(self._path))

    def read_from(self, lsn: int) -> list[tuple[int, WALRecord]]:
        """The ``(lsn, record)`` pairs stamped at or beyond ``lsn``.

        This is the tail a replication shipper reads after its standby
        acknowledged ``lsn - 1``.  Read it together with :attr:`generation`
        under :attr:`mutex` — a rewrite between the two would hand back a
        truncated file's tail as if it were a continuation.
        """
        with self._mutex:
            if not self._closed:
                self._file.flush()
            return [(stamp, record)
                    for stamp, record in read_stamped_records(self._path)
                    if stamp >= lsn]

    # -- life cycle ---------------------------------------------------------------

    def close(self) -> None:
        """Flush and close the underlying file.  Idempotent."""
        with self._mutex:
            if not self._closed:
                self._closed = True
                self._file.flush()
                self._file.close()

    @property
    def mutex(self) -> threading.RLock:
        """The append mutex (checkpointers hold it across snapshot+rewrite)."""
        return self._mutex

    @property
    def path(self) -> Path:
        """Where the log file lives."""
        return self._path

    @property
    def bytes_written(self) -> int:
        """Bytes appended through this handle (not counting rewrites)."""
        with self._mutex:
            return self._bytes_written

    @property
    def last_lsn(self) -> int:
        """The stamp of the most recently appended record (0 when empty)."""
        with self._mutex:
            return self._next_lsn - 1

    @property
    def generation(self) -> int:
        """How many times :meth:`rewrite` has truncated this handle's file."""
        with self._mutex:
            return self._generation


class DecisionLog:
    """The coordinator's decision log as a durable file.

    One :class:`~repro.wal.records.DecisionRecord` per transaction outcome.
    A ``commit`` record is barriered (fsync under the ``fsync`` policy)
    before :meth:`append` returns — it is the transaction's durability
    point; ``abort`` records are advisory under presumed abort (recovery
    treats a missing record exactly like an abort record), so they ride the
    write-through flush only.

    Between checkpoints the log is append-only; at checkpoint time the
    :class:`~repro.wal.checkpoint.CheckpointManager` *compacts* it through
    :meth:`compact`, dropping decisions for transactions no shard WAL still
    mentions.  That is safe under presumed abort: abort records are
    advisory anyway, and a dropped *commit* record only matters while undo
    or redo images of its transaction still exist somewhere — once every
    shard WAL has forgotten the transaction, its effects live entirely in
    the checkpoint snapshots and recovery never asks about it again.  The
    compaction race is closed by ordering, not locking: the droppable set
    is computed from a decision snapshot taken *before* the shard WALs are
    scanned, so a transaction deciding concurrently is simply not in the
    snapshot and survives untouched.
    """

    def __init__(self, path: str | Path, *, sync_on_commit: bool = False,
                 group_window: float | None = None) -> None:
        self._wal = WriteAheadLog(path, sync_on_barrier=sync_on_commit)
        #: Group commit: batch the per-commit fsync into one barrier per
        #: ``group_window`` seconds.  Only meaningful when barriers fsync at
        #: all; with write-through-only barriers the window buys nothing and
        #: is ignored.
        self._group_window = (group_window
                              if sync_on_commit and group_window else None)
        self._group_cv = threading.Condition()
        #: Commit records appended / made durable so far (group mode only).
        self._appended = 0
        self._synced = 0
        self._flusher: threading.Thread | None = None
        self._stopping = False
        #: A barrier failure (disk full, I/O error).  The flusher thread
        #: cannot propagate it to anyone directly, so it parks the exception
        #: here and every current and future waiter raises it — a disk error
        #: must surface as a typed failure, never as a silent commit stall.
        self._group_error: BaseException | None = None

    def append(self, txn: int, verdict: str, shards: tuple[int, ...]) -> int:
        """Record one outcome.

        Without group commit a ``commit`` verdict is durable on return (the
        historical contract).  With a group window the record has merely
        reached the operating system; the caller must invoke
        :meth:`wait_durable` — *outside* whatever mutex serialises its
        appends — before treating the commit as durable.
        """
        written = self._wal.append(DecisionRecord(txn=txn, verdict=verdict,
                                                  shards=shards))
        if verdict == "commit":
            if self._group_window is None:
                self._wal.barrier()
            else:
                with self._group_cv:
                    self._appended += 1
                    if self._flusher is None:
                        self._flusher = threading.Thread(
                            target=self._flush_loop, daemon=True,
                            name="repro-group-commit")
                        self._flusher.start()
                    self._group_cv.notify_all()
        return written

    def wait_durable(self) -> None:
        """Block until every commit record appended so far is durable.

        A no-op without group commit.  The caller observes the append
        counter at entry and waits for a barrier to cover it, so several
        committers arriving within one window share a single fsync.
        """
        if self._group_window is None:
            return
        with self._group_cv:
            target = self._appended
            while self._synced < target:
                if self._group_error is not None:
                    raise WALError("group-commit barrier failed; the commit "
                                   "record is not durable") from self._group_error
                self._group_cv.wait()

    def _flush_loop(self) -> None:
        while True:
            with self._group_cv:
                while self._appended == self._synced and not self._stopping:
                    self._group_cv.wait()
                if self._stopping and self._appended == self._synced:
                    return
            # Let the window fill up before paying the barrier, then fsync
            # outside the condition so appenders are never blocked on disk.
            time.sleep(self._group_window)
            with self._group_cv:
                covered = self._appended
            try:
                self._wal.barrier()
            except BaseException as error:  # noqa: BLE001 - parked for waiters
                with self._group_cv:
                    self._group_error = error
                    self._group_cv.notify_all()
                return
            with self._group_cv:
                self._synced = covered
                self._group_cv.notify_all()

    def decisions(self) -> list[DecisionRecord]:
        """Every decision durably recorded, in decision order."""
        return [record for record in self._wal.records()
                if isinstance(record, DecisionRecord)]

    def compact(self, drop: "set[int] | frozenset[int]") -> tuple[int, int]:
        """Atomically drop the decisions of the given transactions.

        Returns ``(kept, dropped)`` record counts.  The caller is
        responsible for ``drop`` being safe — i.e. no shard WAL still
        mentions any of these transactions (see
        :class:`~repro.wal.checkpoint.CheckpointManager`).  Decisions
        appended concurrently with the rewrite are preserved: the rewrite
        re-reads the file under the append mutex and keeps every record
        whose transaction is not explicitly named.
        """
        return self._wal.rewrite(lambda record: record.txn not in drop)

    @staticmethod
    def outcomes_at(path: str | Path) -> dict[int, str]:
        """Read ``txn -> verdict`` from a decision log file (recovery side).

        The last record for a transaction wins, matching the in-memory
        decision log's ``decision_for``.
        """
        outcomes: dict[int, str] = {}
        for record in read_records(path):
            if isinstance(record, DecisionRecord):
                outcomes[record.txn] = record.verdict
        return outcomes

    def close(self) -> None:
        """Drain any pending group barrier, then close the file.  Idempotent."""
        if self._group_window is not None:
            with self._group_cv:
                self._stopping = True
                self._group_cv.notify_all()
            if self._flusher is not None:
                self._flusher.join()
                self._flusher = None
        self._wal.close()

    @property
    def bytes_written(self) -> int:
        """Bytes appended through this handle."""
        return self._wal.bytes_written

    @property
    def path(self) -> Path:
        """Where the decision log lives."""
        return self._wal.path

    @property
    def on_barrier(self) -> Callable[[float], None] | None:
        """Barrier-duration hook, forwarded to the underlying log — both the
        per-commit barrier and the group-commit flusher's barrier report
        through it."""
        return self._wal.on_barrier

    @on_barrier.setter
    def on_barrier(self, hook: Callable[[float], None] | None) -> None:
        self._wal.on_barrier = hook
