"""Crash recovery: rebuild a store from checkpoints, logs and decisions.

The :class:`RecoveryRunner` consumes the directory a crashed engine left
behind — per-shard checkpoint snapshots and write-ahead logs plus the
coordinator's durable decision log — and produces a store holding exactly
the committed state, under the **presumed-abort** rule: a transaction found
in a shard log is redone only if the decision log holds a ``commit`` record
for it; an explicit ``abort`` record and *no record at all* mean the same
thing — the transaction never happened.  (That is why prepare writes its
marker before voting but commit is the only decision that must be durable
before anyone proceeds.)

Replay order per shard, after the snapshot is loaded:

1. **undo losers, newest first** — every before-image of every transaction
   without a commit record is restored in reverse log order.  Strict 2PL
   makes this converge on committed values: a loser's before-image is
   always the committed value at the time it took the write lock, and an
   in-doubt loser (crashed holding its locks) is necessarily the last
   writer of its fields;
2. **redo winners, oldest first** — every after-image of every committed
   transaction is re-applied in log order.  Redo images are appended at
   prepare time, so for any one field their log order is the commit order,
   and replay ends on the last committed value whether or not the fuzzy
   snapshot had already caught it (re-applying is idempotent).

The runner is read-only with respect to the directory: recovering twice
from the same files yields the same store, and a recovered workload should
be resumed into a *fresh* durability directory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import WALError
from repro.objects.oid import OID
from repro.objects.store import ObjectStore
from repro.schema import Schema
from repro.wal.checkpoint import read_checkpoint_file
from repro.wal.durability import Durability
from repro.wal.log import DecisionLog, read_stamped_records
from repro.wal.records import (
    EscrowDelta,
    InstanceCreated,
    InstanceDeleted,
    RedoImage,
    UndoImage,
    WALRecord,
    decode_value,
)


@dataclass(frozen=True)
class RecoveryReport:
    """What one recovery pass found and did."""

    shards: int
    durability_mode: str
    restored_instances: int
    #: Transactions redone from a durable commit record.
    winners: tuple[int, ...]
    #: Transactions undone: decided aborts whose records were still in a log,
    #: plus every in-doubt transaction.
    losers: tuple[int, ...]
    #: The subset of losers with *no* decision record — resolved purely by
    #: presumed abort.
    in_doubt: tuple[int, ...]
    #: In-doubt transactions that had already voted yes somewhere (a durable
    #: ``PREPARED`` marker without a commit record): the classic window the
    #: presumed-abort rule exists for.
    prepared_in_doubt: tuple[int, ...]
    undo_applied: int
    redo_applied: int
    #: Mid-epoch creations rebuilt from structural WAL records (instances
    #: the base checkpoint never saw).
    created_replayed: int = 0
    #: Mid-epoch deletions re-applied from structural WAL records.
    deleted_replayed: int = 0
    #: Winners' escrow deltas re-applied (those past the snapshot boundary).
    escrow_redone: int = 0
    #: Losers' escrow deltas inverse-applied (those inside the snapshot).
    escrow_undone: int = 0

    def as_document(self) -> dict[str, Any]:
        """A JSON-ready summary (CI uploads this as the recovery report)."""
        return {
            "shards": self.shards,
            "durability_mode": self.durability_mode,
            "restored_instances": self.restored_instances,
            "winners": list(self.winners),
            "losers": list(self.losers),
            "in_doubt": list(self.in_doubt),
            "prepared_in_doubt": list(self.prepared_in_doubt),
            "undo_applied": self.undo_applied,
            "redo_applied": self.redo_applied,
            "created_replayed": self.created_replayed,
            "deleted_replayed": self.deleted_replayed,
            "escrow_redone": self.escrow_redone,
            "escrow_undone": self.escrow_undone,
        }


@dataclass
class RecoveryResult:
    """The recovered store together with the report describing the pass."""

    store: Any
    report: RecoveryReport
    #: Per-shard log records as read (tests use these to audit the store
    #: against the log independently of the replay code above).
    shard_records: dict[int, list[WALRecord]] = field(default_factory=dict)
    #: The same records with their LSN stamps (``(lsn, record)`` pairs) and
    #: the per-shard snapshot boundary, for escrow-aware auditing.
    stamped_records: dict[int, list[tuple[int, WALRecord]]] = field(default_factory=dict)
    checkpoint_lsns: dict[int, int] = field(default_factory=dict)


class RecoveryRunner:
    """Rebuilds committed state from a crashed engine's durability directory."""

    def __init__(self, durability: Durability, schema: Schema,
                 router=None) -> None:
        if not durability.enabled:
            raise WALError("recovery needs a durability configuration with "
                           "a directory (mode 'lazy' or 'fsync')")
        self._durability = durability
        self._schema = schema
        meta = durability.read_meta()
        self._num_shards = int(meta["shards"])
        if router is None:
            from repro.sharding.router import HashShardRouter

            router = HashShardRouter(self._num_shards)
        if router.num_shards != self._num_shards:
            raise WALError(
                f"router has {router.num_shards} shards but the directory "
                f"was written by a {self._num_shards}-shard engine")
        self._router = router

    @property
    def num_shards(self) -> int:
        """The shard count the crashed engine ran with."""
        return self._num_shards

    @property
    def router(self) -> Any:
        """The placement recovery restores instances with."""
        return self._router

    # -- the pass ----------------------------------------------------------------

    def recover(self, store: Any | None = None) -> RecoveryResult:
        """Rebuild a store: checkpoints, then undo losers, then redo winners.

        ``store`` optionally supplies the empty store to restore into; by
        default a :class:`~repro.sharding.store.ShardedObjectStore` over the
        runner's router (or a plain :class:`ObjectStore` for one shard).
        """
        if store is None:
            store = self._fresh_store()
        outcomes = DecisionLog.outcomes_at(self._durability.decisions_path)

        max_number = 0
        snapshot: list[tuple[str, int, dict[str, Any]]] = []
        ckpt_lsns: dict[int, int] = {}
        for shard_id in range(self._num_shards):
            document = read_checkpoint_file(
                self._durability.checkpoint_path(shard_id))
            if document is not None:
                ckpt_lsns[shard_id] = int(document.get("last_lsn", 0))
                snapshot.extend((class_name, number, values)
                                for class_name, number, values
                                in document["instances"])
        # Ascending OID order reproduces creation order, which keeps the
        # recovered store's merged views identical to a clean store's.
        snapshot.sort(key=lambda item: item[1])
        for class_name, number, values in snapshot:
            oid = OID(class_name=class_name, number=number)
            store.restore_instance(oid, class_name,
                                   {name: decode_value(value)
                                    for name, value in values.items()})
            max_number = max(max_number, number)

        winners: set[int] = set()
        losers: set[int] = set()
        in_doubt: set[int] = set()
        prepared: set[int] = set()
        undo_applied = redo_applied = 0
        created_replayed = deleted_replayed = 0
        escrow_redone = escrow_undone = 0
        shard_records: dict[int, list[WALRecord]] = {}
        stamped_records: dict[int, list[tuple[int, WALRecord]]] = {}
        for shard_id in range(self._num_shards):
            stamped = list(read_stamped_records(self._durability.wal_path(shard_id)))
            stamped_records[shard_id] = stamped
            records = [record for _, record in stamped]
            shard_records[shard_id] = records
            ckpt_lsn = ckpt_lsns.get(shard_id, 0)
            # Structural records first, in log order: a creation the base
            # checkpoint never saw must exist before any field image of it
            # can be undone or redone; a deletion wins over both (the field
            # images of a deleted instance are skipped like always).
            for record in records:
                if isinstance(record, InstanceCreated):
                    max_number = max(max_number, record.oid.number)
                    if record.oid not in store:
                        # record_from_payload already decoded the values
                        # (OID tags restored) — no second pass needed.
                        store.restore_instance(record.oid, record.class_name,
                                               dict(record.values))
                        created_replayed += 1
                elif isinstance(record, InstanceDeleted):
                    if record.oid in store:
                        store.delete(record.oid)
                        deleted_replayed += 1
            for record in records:
                if isinstance(record, (InstanceCreated, InstanceDeleted)):
                    continue
                if record.kind == "prepared":
                    prepared.add(record.txn)
                verdict = outcomes.get(record.txn)
                if verdict == "commit":
                    winners.add(record.txn)
                else:
                    losers.add(record.txn)
                    if verdict is None:
                        in_doubt.add(record.txn)
                oid = getattr(record, "oid", None)
                if oid is not None:
                    max_number = max(max_number, oid.number)
            # The oldest surviving loser before-image per (oid, field):
            # reverse-order restoration ends on it, so once restored it —
            # not the checkpoint snapshot — is the base state an escrow
            # delta on that field must be judged against.
            loser_images: dict[tuple[OID, str], tuple[int, int]] = {}
            for lsn, record in stamped:
                if isinstance(record, UndoImage) \
                        and outcomes.get(record.txn) != "commit":
                    for name in record.values:
                        loser_images.setdefault((record.oid, name),
                                                (lsn, record.txn))
            for record in reversed(records):
                if isinstance(record, UndoImage) \
                        and outcomes.get(record.txn) != "commit":
                    undo_applied += self._apply(store, record)
            # Losers' deltas still present in the base are inverse-applied
            # (a runtime abort logged its reversals as opposite-sign deltas,
            # so original and inverse cancel pairwise here).
            for lsn, record in stamped:
                if isinstance(record, EscrowDelta) \
                        and outcomes.get(record.txn) != "commit" \
                        and self._delta_survives_in_base(lsn, record,
                                                         loser_images, ckpt_lsn):
                    escrow_undone += self._apply_delta(store, record,
                                                       invert=True)
            # Winners replay forward in log order: redo images are absolute
            # (captured at prepare, after the winner's own deltas), so
            # interleaving them with the deltas the base is missing lands on
            # the committed value.
            for lsn, record in stamped:
                if outcomes.get(record.txn) != "commit":
                    continue
                if isinstance(record, RedoImage):
                    redo_applied += self._apply(store, record)
                elif isinstance(record, EscrowDelta) and \
                        self._delta_missing_from_base(lsn, record,
                                                      loser_images, ckpt_lsn):
                    escrow_redone += self._apply_delta(store, record)

        store.advance_oids_past(max_number)
        report = RecoveryReport(
            shards=self._num_shards,
            durability_mode=self._durability.mode,
            restored_instances=len(snapshot),
            winners=tuple(sorted(winners)),
            losers=tuple(sorted(losers)),
            in_doubt=tuple(sorted(in_doubt)),
            prepared_in_doubt=tuple(sorted(in_doubt & prepared)),
            undo_applied=undo_applied,
            redo_applied=redo_applied,
            created_replayed=created_replayed,
            deleted_replayed=deleted_replayed,
            escrow_redone=escrow_redone,
            escrow_undone=escrow_undone)
        return RecoveryResult(store=store, report=report,
                              shard_records=shard_records,
                              stamped_records=stamped_records,
                              checkpoint_lsns=ckpt_lsns)

    # -- auditing ----------------------------------------------------------------

    @staticmethod
    def presumed_abort_violations(result: RecoveryResult) -> list[str]:
        """In-doubt writes that outlived recovery, as human-readable strings.

        The oracle is independent of the replay order above: an in-doubt
        transaction crashed holding its write locks, so for every field it
        logged, *no other transaction wrote after it* — the recovered value
        must equal the transaction's **oldest** before-image for that field
        (the committed value when it first took the lock).  An empty list is
        the "no in-doubt writes survive without a commit record" guarantee.
        """
        violations: list[str] = []
        in_doubt = set(result.report.in_doubt)
        stamped_by_shard = result.stamped_records or {
            shard_id: [(0, record) for record in records]
            for shard_id, records in result.shard_records.items()}
        for shard_id, stamped in stamped_by_shard.items():
            expected: dict[tuple[OID, str], Any] = {}
            image_meta: dict[tuple[OID, str], tuple[int, int]] = {}
            for lsn, record in stamped:
                if isinstance(record, UndoImage) and record.txn in in_doubt:
                    for name, value in record.values.items():
                        key = (record.oid, name)
                        if key not in expected:
                            expected[key] = value
                            image_meta[key] = (lsn, record.txn)
            # An oldest before-image embeds the owner's own escrow deltas
            # applied before the capture; recovery inverse-applies those, so
            # the value the oracle should expect is the image minus them.
            for lsn, record in stamped:
                if isinstance(record, EscrowDelta):
                    key = (record.oid, record.field)
                    meta = image_meta.get(key)
                    if meta is not None and record.txn == meta[1] \
                            and 0 < lsn < meta[0]:
                        expected[key] = expected[key] - record.delta
            for (oid, name), value in expected.items():
                if oid not in result.store:
                    continue
                actual = result.store.read_field(oid, name)
                if actual != value:
                    violations.append(
                        f"shard {shard_id}: {oid}.{name} = {actual!r} but an "
                        f"in-doubt transaction's before-image says {value!r}")
        return violations

    # -- internals ---------------------------------------------------------------

    def _fresh_store(self) -> Any:
        if self._num_shards == 1:
            return ObjectStore(self._schema)
        from repro.sharding.store import ShardedObjectStore

        return ShardedObjectStore(self._schema, self._router)

    @staticmethod
    def _apply(store: Any, record: UndoImage | RedoImage) -> int:
        """Write one image's values back; instances lost to the crash are
        skipped (creations are made durable by checkpoints only)."""
        if record.oid not in store:
            return 0
        instance = store.get(record.oid)
        for name, value in record.values.items():
            instance.set(name, value)
        return 1

    @staticmethod
    def _delta_survives_in_base(lsn: int, record: EscrowDelta,
                                loser_images: dict[tuple[OID, str], tuple[int, int]],
                                ckpt_lsn: int) -> bool:
        """Whether a loser's delta is present in the replayed base state.

        With no loser image on the field, the base is the checkpoint
        snapshot: the delta is inside it exactly when its stamp is at or
        below the snapshot boundary.  With a restored image, the base is
        that image, which embeds only the *owner's own* deltas applied
        before the capture — any other loser's earlier delta was already
        reverted (lock conflict forces it: the escrow holder must have
        finished before the ordinary lock was granted) and its original and
        inverse records cancel under this same rule.
        """
        image = loser_images.get((record.oid, record.field))
        if image is not None:
            image_lsn, owner = image
            return owner == record.txn and lsn < image_lsn
        return 0 < lsn <= ckpt_lsn

    @staticmethod
    def _delta_missing_from_base(lsn: int, record: EscrowDelta,
                                 loser_images: dict[tuple[OID, str], tuple[int, int]],
                                 ckpt_lsn: int) -> bool:
        """Whether a winner's delta is absent from the replayed base state.

        The base boundary for the field is the restored loser image's stamp
        when one exists (record order is apply order, so any delta stamped
        before the capture is embedded in the image), the checkpoint
        boundary otherwise.
        """
        image = loser_images.get((record.oid, record.field))
        boundary = image[0] if image is not None else ckpt_lsn
        return lsn > boundary

    @staticmethod
    def _apply_delta(store: Any, record: EscrowDelta, *,
                     invert: bool = False) -> int:
        """Merge one delta (or its inverse) into the recovering store."""
        if record.oid not in store:
            return 0
        instance = store.get(record.oid)
        delta = -record.delta if invert else record.delta
        instance.set(record.field, store.read_field(record.oid, record.field) + delta)
        return 1
