"""Log records: what the durability subsystem writes to disk.

The paper's recovery idea (§3) is that the ``Write`` entries of an
operation's transitive access vector are exactly the projection a log record
needs — no programmer-supplied inverse operation.  The record kinds below
are that idea made durable:

* :class:`UndoImage` — the TAV-projected *before*-image of one instance,
  appended (write-through) **before** the operation executes, so a fuzzy
  checkpoint can never snapshot a dirty field whose pre-state is not already
  on disk;
* :class:`RedoImage` — the projected *after*-image, appended by the shard
  participant at **prepare** time, when strict 2PL guarantees the values are
  the transaction's final ones for those fields;
* :class:`PreparedMarker` — the participant's durable yes-vote, written
  after its redo images and flushed before the vote returns;
* :class:`DecisionRecord` — one entry of the coordinator's durable decision
  log; the ``commit`` record is the transaction's serialisation *and*
  durability point (presumed abort: no commit record ⇒ the transaction never
  happened).

Framing is length-prefixed and checksummed: ``<u32 payload length><u32
CRC-32 of payload><payload>`` with the payload a UTF-8 JSON object.  A
reader stops at the first frame that is short or fails its checksum — a torn
tail is the *expected* shape of a crash, not corruption.  OIDs (both as
record subjects and as reference-field values) are encoded as tagged pairs
so the JSON round-trips them exactly.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from typing import Any, Iterator, Mapping

from repro.errors import WALError
from repro.objects.oid import OID

_HEADER = struct.Struct("<II")

#: Refuse to believe a length prefix beyond this; a frame this large is a
#: corrupt header, not a record (the biggest real record is a store-wide
#: after-image, well under a megabyte for any schema in this repository).
_MAX_PAYLOAD = 64 * 1024 * 1024

_OID_TAG = "$oid"


def encode_value(value: Any) -> Any:
    """A JSON-representable form of one value, walking containers.

    OIDs become ``{"$oid": [class, number]}`` tagged pairs; tuples become
    lists; scalars pass through.  This is the one tagged-OID codec of the
    repository — the client API (:mod:`repro.api.messages`) shares it, so
    log files and wire frames can never drift apart on the encoding.
    """
    if isinstance(value, OID):
        return {_OID_TAG: [value.class_name, value.number]}
    if isinstance(value, Mapping):
        return {name: encode_value(item) for name, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [encode_value(item) for item in value]
    return value


def decode_value(value: Any) -> Any:
    """Invert :func:`encode_value` (lists stay lists; typed consumers that
    want tuples restore them at their boundary)."""
    if isinstance(value, Mapping):
        if set(value.keys()) == {_OID_TAG}:
            class_name, number = value[_OID_TAG]
            return OID(class_name=class_name, number=number)
        return {name: decode_value(item) for name, item in value.items()}
    if isinstance(value, list):
        return [decode_value(item) for item in value]
    return value


def _encode_values(values: Mapping[str, Any]) -> dict[str, Any]:
    return {name: encode_value(value) for name, value in values.items()}


def _decode_values(values: Mapping[str, Any]) -> dict[str, Any]:
    return {name: decode_value(value) for name, value in values.items()}


def _encode_oid(oid: OID) -> list[Any]:
    return [oid.class_name, oid.number]


def _decode_oid(pair: list[Any]) -> OID:
    return OID(class_name=pair[0], number=pair[1])


# ---------------------------------------------------------------------------
# Record kinds
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class UndoImage:
    """Projected before-image of one instance, durable before the write."""

    txn: int
    oid: OID
    values: Mapping[str, Any]

    kind = "undo"

    def payload(self) -> dict[str, Any]:
        return {"kind": self.kind, "txn": self.txn,
                "oid": _encode_oid(self.oid),
                "values": _encode_values(self.values)}


@dataclass(frozen=True)
class RedoImage:
    """Projected after-image of one instance, durable at prepare."""

    txn: int
    oid: OID
    values: Mapping[str, Any]

    kind = "redo"

    def payload(self) -> dict[str, Any]:
        return {"kind": self.kind, "txn": self.txn,
                "oid": _encode_oid(self.oid),
                "values": _encode_values(self.values)}


@dataclass(frozen=True)
class PreparedMarker:
    """The shard's durable yes-vote for one transaction."""

    txn: int

    kind = "prepared"

    def payload(self) -> dict[str, Any]:
        return {"kind": self.kind, "txn": self.txn}


@dataclass(frozen=True)
class InstanceCreated:
    """Structural record: an instance was created mid-epoch.

    Creations used to be durable only through checkpoints; this record lets
    recovery rebuild an instance created *after* the last snapshot instead
    of silently dropping it (and every field image that referenced it).
    ``txn`` is 0 — structural changes are not transaction-scoped here, and
    the zero id is what lets checkpoint rewrites drop the record once the
    snapshot covers the instance (no pending transaction ever has id 0).
    """

    oid: OID
    class_name: str
    values: Mapping[str, Any]
    txn: int = 0

    kind = "created"

    def payload(self) -> dict[str, Any]:
        return {"kind": self.kind, "txn": self.txn,
                "oid": _encode_oid(self.oid), "class": self.class_name,
                "values": _encode_values(self.values)}


@dataclass(frozen=True)
class InstanceDeleted:
    """Structural record: an instance was deleted mid-epoch."""

    oid: OID
    txn: int = 0

    kind = "deleted"

    def payload(self) -> dict[str, Any]:
        return {"kind": self.kind, "txn": self.txn,
                "oid": _encode_oid(self.oid)}


@dataclass(frozen=True)
class EscrowDelta:
    """One escrow counter update: ``field += delta`` on one instance.

    Unlike an :class:`UndoImage`/:class:`RedoImage` pair, the record *is*
    the operation: recovery re-applies winners' deltas and inverse-applies
    losers' — restoring an absolute before-image would erase the deltas of
    concurrent escrow transactions on the same field.  The record is
    appended write-through **atomically with** the in-memory apply (both
    under the WAL mutex), which is what makes the checkpoint's ``last_lsn``
    an exact boundary between "delta already in the snapshot" and "delta
    must be replayed".
    """

    txn: int
    oid: OID
    field: str
    delta: Any

    kind = "escrow"

    def payload(self) -> dict[str, Any]:
        return {"kind": self.kind, "txn": self.txn,
                "oid": _encode_oid(self.oid), "field": self.field,
                "delta": encode_value(self.delta)}


@dataclass(frozen=True)
class DecisionRecord:
    """One coordinator decision (``commit`` or ``abort``) made durable."""

    txn: int
    verdict: str
    shards: tuple[int, ...]

    kind = "decision"

    def payload(self) -> dict[str, Any]:
        return {"kind": self.kind, "txn": self.txn, "verdict": self.verdict,
                "shards": list(self.shards)}


WALRecord = (UndoImage | RedoImage | PreparedMarker | InstanceCreated
             | InstanceDeleted | EscrowDelta | DecisionRecord)


def record_from_payload(payload: Mapping[str, Any]) -> WALRecord:
    """Rebuild the typed record from a decoded JSON payload."""
    kind = payload.get("kind")
    if kind == InstanceCreated.kind:
        return InstanceCreated(oid=_decode_oid(payload["oid"]),
                               class_name=payload["class"],
                               values=_decode_values(payload["values"]),
                               txn=payload.get("txn", 0))
    if kind == InstanceDeleted.kind:
        return InstanceDeleted(oid=_decode_oid(payload["oid"]),
                               txn=payload.get("txn", 0))
    if kind == UndoImage.kind:
        return UndoImage(txn=payload["txn"], oid=_decode_oid(payload["oid"]),
                         values=_decode_values(payload["values"]))
    if kind == RedoImage.kind:
        return RedoImage(txn=payload["txn"], oid=_decode_oid(payload["oid"]),
                         values=_decode_values(payload["values"]))
    if kind == PreparedMarker.kind:
        return PreparedMarker(txn=payload["txn"])
    if kind == EscrowDelta.kind:
        return EscrowDelta(txn=payload["txn"], oid=_decode_oid(payload["oid"]),
                           field=payload["field"],
                           delta=decode_value(payload["delta"]))
    if kind == DecisionRecord.kind:
        return DecisionRecord(txn=payload["txn"], verdict=payload["verdict"],
                              shards=tuple(payload["shards"]))
    raise WALError(f"unknown log record kind {kind!r}")


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------


def encode_frame(record: WALRecord, *, lsn: int | None = None) -> bytes:
    """Length-prefixed, checksummed wire form of one record.

    When ``lsn`` is given the frame carries it as an extra ``"lsn"`` payload
    key — the log sequence number rides *inside* the checksummed JSON, so a
    replication stream cannot deliver a frame whose stamp was torn apart
    from its record.  Readers that do not care about stamps
    (:func:`decode_frames`) ignore the key.
    """
    document = record.payload()
    if lsn is not None:
        document["lsn"] = lsn
    payload = json.dumps(document, separators=(",", ":"),
                         sort_keys=True).encode("utf-8")
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def decode_stamped_frames(data: bytes) -> Iterator[tuple[int, WALRecord]]:
    """Yield ``(lsn, record)`` pairs, stopping cleanly at a torn tail.

    A short header, a short payload or a checksum mismatch all end the
    iteration silently: that is the state a killed process legitimately
    leaves behind, and every byte before the tear has already passed its
    checksum.  An *implausible* length prefix (beyond :data:`_MAX_PAYLOAD`)
    also stops the scan — treating it as a tear keeps recovery running on
    the intact prefix.  Frames written before LSN stamping existed decode
    with ``lsn`` 0 (no real stamp is ever 0 — stamps start at 1).
    """
    offset = 0
    total = len(data)
    while offset + _HEADER.size <= total:
        length, checksum = _HEADER.unpack_from(data, offset)
        if length > _MAX_PAYLOAD:
            return
        start = offset + _HEADER.size
        end = start + length
        if end > total:
            return
        payload = data[start:end]
        if zlib.crc32(payload) != checksum:
            return
        document = json.loads(payload.decode("utf-8"))
        yield int(document.get("lsn", 0)), record_from_payload(document)
        offset = end


def decode_frames(data: bytes) -> Iterator[WALRecord]:
    """Yield the records of ``data``, stopping cleanly at a torn tail."""
    for _, record in decode_stamped_frames(data):
        yield record
