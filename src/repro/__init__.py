"""repro — reproduction of Malta & Martinez, ICDE 1993.

*Automating Fine Concurrency Control in Object-Oriented Databases* derives,
at compile time and without programmer intervention, a per-method access mode
for every class of an object-oriented database, so that the lock manager gets
the parallelism of field-level commutativity at the run-time cost of plain
read/write locking.

The package is organised bottom-up:

* :mod:`repro.lang` — the method definition language (parser, AST);
* :mod:`repro.schema` — classes, fields, methods, inheritance;
* :mod:`repro.objects` — OIDs, instances, extents, the method interpreter;
* :mod:`repro.core` — the paper's contribution: access vectors, the
  late-binding resolution graph, transitive access vectors, per-class
  commutativity tables (the compiler);
* :mod:`repro.locking` — the commutativity-driven lock manager;
* :mod:`repro.txn` — transactions, recovery, and the concurrency-control
  protocols (the paper's scheme plus the baselines it is compared with);
* :mod:`repro.sim` — workload generation and the discrete-event concurrency
  simulator;
* :mod:`repro.engine` — the multi-threaded execution engine: blocking lock
  acquisition, background deadlock detection, sessions with automatic
  abort-and-retry, and a wall-clock throughput harness;
* :mod:`repro.sharding` — shard routers, the partitioned store, per-shard
  lock managers and cross-shard two-phase commit;
* :mod:`repro.wal` — durability: per-shard write-ahead logs of TAV-projected
  before/after images, fuzzy checkpoints, and crash recovery with presumed
  abort (``Engine(protocol, durability=Durability.fsynced(path))``);
* :mod:`repro.api` — the transport-agnostic client API: typed JSON
  commands, the dispatcher owning the engine, admission control, and the
  socket server/client pair (``python -m repro.api.server``);
* :mod:`repro.reporting` — textual tables and figure renderings.

Quickstart::

    from repro import SchemaBuilder, compile_schema, ObjectStore
    from repro.txn import TransactionManager
    from repro.txn.protocols import TAVProtocol

    schema = (SchemaBuilder()
              .define("Account")
              .field("balance", "float")
              .method("deposit", "amount", body="balance := balance + amount")
              .build())
    compiled = compile_schema(schema)
    store = ObjectStore(schema)
    account = store.create("Account", balance=10.0)

    manager = TransactionManager(TAVProtocol(compiled, store))
    txn = manager.begin()
    manager.call(txn, account.oid, "deposit", 5.0)
    manager.commit(txn)

The :class:`~repro.txn.manager.TransactionManager` is single-threaded and
fail-fast (a conflict raises immediately).  For real concurrent traffic use
an :class:`~repro.engine.engine.Engine`: its sessions *block* on conflicting
locks, a detector thread aborts deadlock victims, and
``run_transaction`` retries them with capped exponential backoff::

    from repro.engine import Engine

    with Engine(TAVProtocol(compiled, store)) as engine:
        # any number of threads may do this concurrently:
        def transfer(session):
            session.call(account.oid, "deposit", 5.0)

        engine.run_transaction(transfer)

    # or drive a session by hand:
    with Engine(TAVProtocol(compiled, store)) as engine:
        with engine.begin() as session:     # commits on success, aborts on error
            session.call(account.oid, "deposit", 5.0)

Measure wall-clock throughput of the five protocols on a seeded workload
with the harness (``python -m repro.engine.harness --help``), which also
verifies serializability by replaying the recorded commit order on a replica
store.
"""

from repro.core import (
    AccessMode,
    AccessVector,
    CompiledClass,
    CompiledSchema,
    compile_schema,
)
from repro.objects import Instance, Interpreter, OID, ObjectStore
from repro.schema import (
    ClassDefinition,
    Field,
    MethodDefinition,
    Schema,
    SchemaBuilder,
    banking_schema,
    figure1_schema,
    library_schema,
)

__version__ = "1.4.0"

__all__ = [
    "AccessMode",
    "AccessVector",
    "ClassDefinition",
    "CompiledClass",
    "CompiledSchema",
    "Field",
    "Instance",
    "Interpreter",
    "MethodDefinition",
    "OID",
    "ObjectStore",
    "Schema",
    "SchemaBuilder",
    "__version__",
    "banking_schema",
    "compile_schema",
    "figure1_schema",
    "library_schema",
]
