"""Observability: transaction tracing and mergeable latency histograms.

This package has no dependency on the engine layers it instruments —
``repro.engine``, ``repro.api`` and ``repro.sharding`` all import *it*,
never the other way around.
"""

from repro.obs.histogram import (
    BUCKET_BOUNDS,
    BUCKET_FLOOR,
    NUM_BUCKETS,
    LatencyHistogram,
    bucket_index,
)
from repro.obs.tracing import (
    Span,
    TraceContext,
    Tracer,
    chrome_trace_document,
    new_trace_id,
    write_chrome_trace,
)

__all__ = [
    "BUCKET_BOUNDS",
    "BUCKET_FLOOR",
    "NUM_BUCKETS",
    "LatencyHistogram",
    "bucket_index",
    "Span",
    "TraceContext",
    "Tracer",
    "chrome_trace_document",
    "new_trace_id",
    "write_chrome_trace",
]
