"""End-to-end transaction tracing.

A traced transaction carries a :class:`TraceContext` — a trace id naming
the whole transaction plus the span id of the caller's current span —
across both wire layers: the client API frames (``repro.api.messages``)
and the participant RPCs (``repro.sharding.rpc``).  Each process records
its own :class:`Span` objects into a local :class:`Tracer`; the engine
gathers worker spans over a drain RPC and exports everything as one
Chrome-trace-format JSON document (``chrome://tracing`` / Perfetto's
legacy loader), where every process gets its own lane.

Wall-clock alignment across processes uses ``time.time()`` for span
start timestamps and a ``perf_counter`` delta for durations: epoch
clocks on one machine agree to well under a millisecond, while
``perf_counter`` origins differ per process and cannot be compared
directly.

Context dictionaries on the wire are plain JSON objects —
``{"t": trace_id, "p": parent_span_id}`` — so they pass through both
codecs without any new encoding tags.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping


def new_trace_id() -> str:
    """A fresh globally-unique trace id."""
    return uuid.uuid4().hex


@dataclass(frozen=True)
class TraceContext:
    """What travels on the wire: which trace, and which span is the parent."""

    trace_id: str
    parent: int | None = None

    def to_wire(self) -> dict[str, Any]:
        """The JSON-safe wire form (short keys — this rides every frame)."""
        return {"t": self.trace_id, "p": self.parent}

    @staticmethod
    def from_wire(value: Any) -> "TraceContext | None":
        """Decode a wire context; ``None`` and malformed values read as untraced."""
        if value is None:
            return None
        if isinstance(value, TraceContext):
            return value
        if isinstance(value, Mapping) and "t" in value:
            parent = value.get("p")
            return TraceContext(trace_id=str(value["t"]),
                                parent=None if parent is None else int(parent))
        return None


@dataclass
class Span:
    """One timed stage of a traced transaction, in one process."""

    name: str
    trace_id: str
    span_id: int
    parent: int | None = None
    category: str = "engine"
    start: float = 0.0  # wall-clock epoch seconds
    duration: float = 0.0  # seconds
    pid: int = 0
    tid: int = 0
    args: dict[str, Any] = field(default_factory=dict)
    #: perf_counter at begin — local to the recording process, never shipped.
    _t0: float = field(default=0.0, repr=False, compare=False)

    def context(self) -> TraceContext:
        """The context a child span (possibly in another process) inherits."""
        return TraceContext(trace_id=self.trace_id, parent=self.span_id)

    def to_event(self) -> dict[str, Any]:
        """This span as a Chrome-trace complete ("X") event.

        Chrome's event format has no explicit parent field — nesting is
        inferred from time containment per lane — so the span/parent ids
        ride in ``args`` where the connectivity assertions (and humans)
        can follow the tree across process lanes.
        """
        return {
            "name": self.name,
            "cat": self.category,
            "ph": "X",
            "ts": self.start * 1e6,
            "dur": self.duration * 1e6,
            "pid": self.pid,
            "tid": self.tid,
            "args": {
                **self.args,
                "trace_id": self.trace_id,
                "span_id": self.span_id,
                "parent_id": self.parent,
            },
        }

    def to_wire(self) -> dict[str, Any]:
        """JSON-safe form for shipping worker spans to the engine."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent": self.parent,
            "category": self.category,
            "start": self.start,
            "duration": self.duration,
            "pid": self.pid,
            "tid": self.tid,
            "args": dict(self.args),
        }

    @classmethod
    def from_wire(cls, document: Mapping[str, Any]) -> "Span":
        """Rebuild a span shipped from another process."""
        parent = document.get("parent")
        return cls(
            name=str(document["name"]),
            trace_id=str(document["trace_id"]),
            span_id=int(document["span_id"]),
            parent=None if parent is None else int(parent),
            category=str(document.get("category", "engine")),
            start=float(document.get("start", 0.0)),
            duration=float(document.get("duration", 0.0)),
            pid=int(document.get("pid", 0)),
            tid=int(document.get("tid", 0)),
            args=dict(document.get("args") or {}),
        )


class Tracer:
    """Per-process span factory and bounded buffer.

    Span ids are salted with the process id so ids minted independently
    by the engine and its shard workers never collide within one trace.
    ``sample_every=N`` makes :meth:`should_sample` approve every Nth
    locally-originated transaction; propagated contexts bypass sampling —
    whoever started the trace already made that call.
    """

    def __init__(self, *, sample_every: int = 1, capacity: int = 100_000) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1: {sample_every!r}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity!r}")
        self._sample_every = sample_every
        self._capacity = capacity
        self._mutex = threading.Lock()
        self._spans: list[Span] = []
        self._dropped = 0
        self._sample_counter = 0
        self._span_counter = 0

    # -- sampling and ids --------------------------------------------------------

    def should_sample(self) -> bool:
        """Whether the next locally-begun transaction should be traced."""
        with self._mutex:
            self._sample_counter += 1
            return (self._sample_counter - 1) % self._sample_every == 0

    def new_trace_id(self) -> str:
        """A fresh trace id (module-level helper, re-exported for callers)."""
        return new_trace_id()

    def _next_span_id(self) -> int:
        with self._mutex:
            self._span_counter += 1
            return (os.getpid() << 32) | self._span_counter

    # -- recording ---------------------------------------------------------------

    def begin_span(self, name: str, trace_id: str, *,
                   parent: int | None = None, category: str = "engine",
                   args: dict[str, Any] | None = None) -> Span:
        """Open a span; pair with :meth:`end_span` (or use :meth:`span`)."""
        span = Span(name=name, trace_id=trace_id,
                    span_id=self._next_span_id(), parent=parent,
                    category=category, start=time.time(),
                    pid=os.getpid(), tid=threading.get_ident(),
                    args=dict(args) if args else {})
        span._t0 = time.perf_counter()
        return span

    def end_span(self, span: Span) -> Span:
        """Close a span (duration from the begin perf_counter) and record it."""
        span.duration = max(0.0, time.perf_counter() - span._t0)
        self.record(span)
        return span

    @contextmanager
    def span(self, name: str, trace_id: str, *,
             parent: int | None = None, category: str = "engine",
             args: dict[str, Any] | None = None) -> Iterator[Span]:
        """Context manager sugar: the span closes however the block exits."""
        current = self.begin_span(name, trace_id, parent=parent,
                                  category=category, args=args)
        try:
            yield current
        finally:
            self.end_span(current)

    def record(self, span: Span) -> None:
        """Buffer a finished span; beyond capacity, count drops instead."""
        with self._mutex:
            if len(self._spans) < self._capacity:
                self._spans.append(span)
            else:
                self._dropped += 1

    # -- reading -----------------------------------------------------------------

    @property
    def spans(self) -> tuple[Span, ...]:
        """Everything recorded so far, in completion order."""
        with self._mutex:
            return tuple(self._spans)

    @property
    def dropped(self) -> int:
        """Spans lost to the capacity bound."""
        with self._mutex:
            return self._dropped

    def drain(self) -> list[Span]:
        """Hand over (and forget) every buffered span — the worker-side RPC."""
        with self._mutex:
            spans, self._spans = self._spans, []
            return spans


def chrome_trace_document(spans: Iterable[Span]) -> dict[str, Any]:
    """Spans as one Chrome-trace JSON object (load in Perfetto/chrome://tracing)."""
    return {
        "traceEvents": [span.to_event() for span in spans],
        "displayTimeUnit": "ms",
    }


def write_chrome_trace(path: str | Path, spans: Iterable[Span]) -> int:
    """Write a Chrome-trace file; returns the number of events written."""
    document = chrome_trace_document(spans)
    Path(path).write_text(json.dumps(document, indent=1, sort_keys=True))
    return len(document["traceEvents"])
