"""Mergeable fixed-bucket latency histograms.

Every histogram in the system shares one immutable bucket layout:
log2-scaled bounds from a one-microsecond floor up through multi-day
durations.  A shared fixed layout is what makes merging **lossless** —
two histograms recorded in different processes combine by element-wise
addition of their bucket counts, with no re-binning and therefore no
resolution loss.  That property is load-bearing: shard worker processes
record latencies locally and the engine folds their snapshots into one
cluster histogram; the socket harness subtracts a "before" snapshot from
an "after" one to isolate a run.  Both operations are exact under a
fixed layout and ill-defined under an adaptive one.

The price is bounded relative error on percentile queries (a factor-two
bucket width), which is the usual trade for mergeable latency sketches
and plenty for p50/p95/p99 reporting.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Iterable, Mapping

#: Lower edge of bucket 1: everything at or below one microsecond lands in
#: bucket 0.  Lock waits, fsyncs and RPC round trips all sit comfortably
#: above this floor.
BUCKET_FLOOR = 1e-6

#: Number of buckets.  ``BUCKET_FLOOR * 2 ** (NUM_BUCKETS - 1)`` is about
#: 1.6 days — the top bucket absorbs anything beyond that.
NUM_BUCKETS = 48

_LOG2_FLOOR = math.log2(BUCKET_FLOOR)

#: Inclusive upper bound of each bucket, in seconds.
BUCKET_BOUNDS = tuple(BUCKET_FLOOR * 2.0 ** index for index in range(NUM_BUCKETS))


def bucket_index(seconds: float) -> int:
    """The bucket a duration falls into: ``bounds[i-1] < seconds <= bounds[i]``."""
    if seconds <= BUCKET_FLOOR:
        return 0
    index = int(math.ceil(math.log2(seconds) - _LOG2_FLOOR))
    if index >= NUM_BUCKETS:
        return NUM_BUCKETS - 1
    return index


class LatencyHistogram:
    """A thread-safe latency histogram over the shared fixed bucket layout.

    Exact count, sum, min and max ride along with the buckets, so mean
    latency stays exact even though percentiles are bucket-resolution.
    """

    __slots__ = ("_mutex", "_counts", "_count", "_total", "_min", "_max")

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._counts = [0] * NUM_BUCKETS
        self._count = 0
        self._total = 0.0
        self._min: float | None = None
        self._max: float | None = None

    # -- recording ---------------------------------------------------------------

    def record(self, seconds: float) -> None:
        """Add one observation (negative durations clamp to zero)."""
        value = max(0.0, float(seconds))
        index = bucket_index(value)
        with self._mutex:
            self._counts[index] += 1
            self._count += 1
            self._total += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold ``other`` into this histogram, losslessly.  Returns self."""
        with other._mutex:
            counts = list(other._counts)
            count, total = other._count, other._total
            low, high = other._min, other._max
        with self._mutex:
            for index, value in enumerate(counts):
                self._counts[index] += value
            self._count += count
            self._total += total
            if low is not None and (self._min is None or low < self._min):
                self._min = low
            if high is not None and (self._max is None or high > self._max):
                self._max = high
        return self

    def subtract(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Remove ``other``'s observations (the before/after delta).  Returns self.

        Bucket counts, the count and the sum subtract exactly (clamped at
        zero against drift); min and max cannot be un-merged, so they are
        kept as recorded and stay advisory on a delta.
        """
        with other._mutex:
            counts = list(other._counts)
            count, total = other._count, other._total
        with self._mutex:
            for index, value in enumerate(counts):
                self._counts[index] = max(0, self._counts[index] - value)
            self._count = max(0, self._count - count)
            self._total = max(0.0, self._total - total)
        return self

    # -- queries -----------------------------------------------------------------

    @property
    def count(self) -> int:
        """Observations recorded."""
        with self._mutex:
            return self._count

    @property
    def total(self) -> float:
        """Exact sum of all observations, in seconds."""
        with self._mutex:
            return self._total

    @property
    def mean(self) -> float:
        """Exact mean latency in seconds (0.0 when empty)."""
        with self._mutex:
            return self._total / self._count if self._count else 0.0

    def percentile(self, q: float) -> float:
        """The latency at percentile ``q`` (0–100), in seconds.

        Returns the inclusive upper bound of the bucket where the
        cumulative count crosses the rank, clamped to the exact observed
        min/max — so a single-observation histogram reports that exact
        value at every percentile.  0.0 when empty.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile out of range: {q!r}")
        with self._mutex:
            if self._count == 0:
                return 0.0
            rank = max(1, math.ceil(self._count * q / 100.0))
            cumulative = 0
            for index, bucket in enumerate(self._counts):
                cumulative += bucket
                if cumulative >= rank:
                    bound = BUCKET_BOUNDS[index]
                    break
            else:  # pragma: no cover - counts always sum to _count
                bound = BUCKET_BOUNDS[-1]
            low = self._min if self._min is not None else 0.0
            high = self._max if self._max is not None else bound
            return min(max(bound, low), high)

    # -- wire format -------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A JSON-safe snapshot: sparse bucket counts plus the exact moments."""
        with self._mutex:
            return {
                "counts": {str(index): value
                           for index, value in enumerate(self._counts) if value},
                "count": self._count,
                "total": self._total,
                "min": self._min,
                "max": self._max,
            }

    @classmethod
    def from_snapshot(cls, document: Mapping[str, Any]) -> "LatencyHistogram":
        """Rebuild a histogram from :meth:`snapshot` (JSON round-trip safe)."""
        histogram = cls()
        for key, value in dict(document.get("counts") or {}).items():
            index = int(key)
            if 0 <= index < NUM_BUCKETS:
                histogram._counts[index] = int(value)
        histogram._count = int(document.get("count", 0))
        histogram._total = float(document.get("total", 0.0))
        low = document.get("min")
        high = document.get("max")
        histogram._min = None if low is None else float(low)
        histogram._max = None if high is None else float(high)
        return histogram

    @classmethod
    def merged(cls, histograms: Iterable["LatencyHistogram"]) -> "LatencyHistogram":
        """A fresh histogram holding the lossless union of ``histograms``."""
        result = cls()
        for histogram in histograms:
            result.merge(histogram)
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging sugar
        return (f"LatencyHistogram(count={self._count}, "
                f"mean={self.mean * 1000.0:.3f}ms)")
