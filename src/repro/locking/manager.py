"""The lock manager.

One :class:`LockManager` instance serves one concurrency-control protocol.
It knows nothing about what modes *mean*: compatibility is delegated to a
callable ``compatible(resource, held_mode, requested_mode)`` supplied by the
protocol, which is how the paper's per-class commutativity tables, classical
read/write locks and multigranularity class locks all share the same
machinery.  This mirrors the paper's point that once access vectors have been
translated into access modes, "run-time checking of commutativity is as
efficient as for compatibility" — the lock manager does exactly one table
lookup per held lock.

The manager is event-driven rather than thread-blocking: a request either is
granted immediately or joins a FIFO wait queue, and :meth:`release_all`
reports which queued requests became grantable.  The discrete-event simulator
and the (single-threaded) transaction manager both build on this interface.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable

from repro.errors import LockConflictError

#: A lockable resource: any hashable value.  Protocols use tuples whose first
#: element names the granule kind, e.g. ``("instance", oid)`` or
#: ``("class", "c2")``.
Resource = Hashable
#: A lock mode: any hashable value (a method name, ``"R"``, a
#: :class:`~repro.locking.modes.ClassLockMode`, ...).
Mode = Hashable
#: Transaction identifier.
TxnId = int

CompatibilityFn = Callable[[Resource, Mode, Mode], bool]

#: Sentinel meaning "use the manager's default timeout" — distinct from
#: ``None``, which means "wait forever".  Defined here (the lowest layer)
#: so that blocking front-ends in :mod:`repro.engine` and
#: :mod:`repro.sharding` can share it without importing each other.
USE_DEFAULT_TIMEOUT = object()


class RequestStatus(enum.Enum):
    """Outcome of a lock request."""

    GRANTED = "granted"
    WAITING = "waiting"


@dataclass(frozen=True)
class LockRequestOutcome:
    """What happened to a lock request."""

    status: RequestStatus
    resource: Resource
    mode: Mode
    txn: TxnId
    #: Transactions whose held locks block this request (empty when granted).
    blockers: tuple[TxnId, ...] = ()

    @property
    def granted(self) -> bool:
        """``True`` when the lock was granted immediately."""
        return self.status is RequestStatus.GRANTED


@dataclass
class LockManagerStats:
    """Counters accumulated by the lock manager (reset with ``reset``)."""

    requests: int = 0
    grants: int = 0
    waits: int = 0
    upgrades: int = 0
    redundant: int = 0
    #: Admission checks answered by the per-resource conflict bitmap.
    mask_checks: int = 0
    #: Bitmap checks that admitted the request without scanning holders.
    fast_grants: int = 0

    def reset(self) -> None:
        """Zero every counter."""
        self.requests = 0
        self.grants = 0
        self.waits = 0
        self.upgrades = 0
        self.redundant = 0
        self.mask_checks = 0
        self.fast_grants = 0


@dataclass
class _WaitingRequest:
    txn: TxnId
    mode: Mode


@dataclass
class _ResourceEntry:
    #: Modes held per transaction (a transaction may hold several modes).
    holders: dict[TxnId, list[Mode]] = field(default_factory=dict)
    #: FIFO queue of waiting requests.
    queue: list[_WaitingRequest] = field(default_factory=list)
    #: Bit index lazily assigned to each mode ever seen on this resource.
    mode_bits: dict[Mode, int] = field(default_factory=dict)
    #: Directed conflict masks: ``conflict[m]`` has the bit of every held
    #: mode that blocks a new request of ``m``.
    conflict: dict[Mode, int] = field(default_factory=dict)
    #: OR of the bits of every currently granted mode.
    granted_mask: int = 0
    #: Number of outstanding grants per bit (maintains ``granted_mask``).
    grant_counts: dict[int, int] = field(default_factory=dict)


class LockManager:
    """Tracks granted locks and wait queues for one protocol.

    Admission normally runs through precomputed per-resource conflict
    bitmaps: every mode seen on a resource gets a bit index, conflict rows
    are filled once from the protocol's compatibility callable, and the
    steady-state check is ``granted_mask & conflict[mode] == 0`` instead of
    a scan of holders.  ``use_masks=False`` restores the pure table-lookup
    scan (kept for A/B benchmarking).
    """

    def __init__(self, compatible: CompatibilityFn, *, use_masks: bool = True) -> None:
        self._compatible = compatible
        self._use_masks = use_masks
        self._entries: dict[Resource, _ResourceEntry] = {}
        self._held_by_txn: dict[TxnId, OrderedDict[Resource, None]] = {}
        self.stats = LockManagerStats()

    # -- requesting -----------------------------------------------------------

    def request(self, txn: TxnId, resource: Resource, mode: Mode) -> LockRequestOutcome:
        """Request ``mode`` on ``resource`` for transaction ``txn``.

        The request is granted when the mode is compatible with every mode
        held by *other* transactions on the resource.  Re-requesting a mode
        the transaction already holds is counted as redundant and granted
        immediately; adding a *different* mode to an already-held resource is
        counted as an upgrade (lock escalation when the new mode is more
        exclusive).
        """
        self.stats.requests += 1
        entry = self._entries.setdefault(resource, _ResourceEntry())
        already_held = entry.holders.get(txn, [])

        if mode in already_held:
            self.stats.redundant += 1
            self.stats.grants += 1
            return LockRequestOutcome(RequestStatus.GRANTED, resource, mode, txn)

        blockers = self._blockers(entry, txn, resource, mode)
        queue_blocks = self._queue_blocks(entry, txn, resource, mode)
        if not blockers and not queue_blocks:
            if already_held:
                self.stats.upgrades += 1
            self._grant(entry, txn, resource, mode)
            self.stats.grants += 1
            return LockRequestOutcome(RequestStatus.GRANTED, resource, mode, txn)

        entry.queue.append(_WaitingRequest(txn=txn, mode=mode))
        self.stats.waits += 1
        return LockRequestOutcome(RequestStatus.WAITING, resource, mode, txn,
                                  blockers=tuple(blockers))

    def acquire(self, txn: TxnId, resource: Resource, mode: Mode) -> None:
        """Like :meth:`request` but raises instead of queueing.

        This is the interface used by the non-simulated transaction manager,
        where a conflict is surfaced immediately as
        :class:`~repro.errors.LockConflictError`.
        """
        outcome = self.request(txn, resource, mode)
        if not outcome.granted:
            self._remove_from_queue(resource, txn, mode)
            raise LockConflictError(
                f"transaction {txn} cannot lock {resource!r} in mode {mode!r}; "
                f"held by {outcome.blockers}", holders=outcome.blockers)

    # -- releasing -------------------------------------------------------------

    def release_all(self, txn: TxnId) -> list[LockRequestOutcome]:
        """Release every lock held by ``txn`` and drop its queued requests.

        Returns the outcomes of the queued requests of *other* transactions
        that became grantable, in grant order (the caller resumes them).
        """
        held = self._held_by_txn.pop(txn, OrderedDict())
        touched: list[Resource] = list(held)
        for resource in touched:
            entry = self._entries.get(resource)
            if entry is not None:
                released = entry.holders.pop(txn, None)
                if released:
                    self._retire_modes(entry, released)
        # Drop this transaction's own waiting requests everywhere.  Resources
        # where it was merely queued must be promoted too: removing a waiter
        # can unblock requests that were queued behind it for fairness.
        for resource, entry in self._entries.items():
            remaining = [w for w in entry.queue if w.txn != txn]
            if len(remaining) != len(entry.queue):
                entry.queue = remaining
                if resource not in touched:
                    touched.append(resource)
        return self._promote(touched)

    def cancel(self, txn: TxnId, resource: Resource, mode: Mode) -> list[LockRequestOutcome]:
        """Withdraw one queued request of ``txn`` without touching held locks.

        Used by blocking front-ends when a wait is abandoned (timeout, victim
        abort).  Removing a waiter can unblock requests that were queued
        behind it for fairness, so the resource is re-promoted; the outcomes
        of newly grantable requests are returned exactly as for
        :meth:`release_all`.
        """
        self._remove_from_queue(resource, txn, mode)
        return self._promote([resource])

    def _promote(self, resources: Iterable[Resource]) -> list[LockRequestOutcome]:
        granted: list[LockRequestOutcome] = []
        for resource in resources:
            entry = self._entries.get(resource)
            if entry is None:
                continue
            still_waiting: list[_WaitingRequest] = []
            for waiting in entry.queue:
                blockers = self._blockers(entry, waiting.txn, resource, waiting.mode)
                if blockers:
                    still_waiting.append(waiting)
                    continue
                self._grant(entry, waiting.txn, resource, waiting.mode)
                self.stats.grants += 1
                granted.append(LockRequestOutcome(RequestStatus.GRANTED, resource,
                                                  waiting.mode, waiting.txn))
            entry.queue = still_waiting
        return granted

    # -- introspection -----------------------------------------------------------

    def holders(self, resource: Resource) -> dict[TxnId, tuple[Mode, ...]]:
        """Modes currently held on ``resource``, per transaction."""
        entry = self._entries.get(resource)
        if entry is None:
            return {}
        return {txn: tuple(modes) for txn, modes in entry.holders.items()}

    def waiting(self, resource: Resource) -> tuple[tuple[TxnId, Mode], ...]:
        """Queued requests on ``resource`` in FIFO order."""
        entry = self._entries.get(resource)
        if entry is None:
            return ()
        return tuple((w.txn, w.mode) for w in entry.queue)

    def locks_of(self, txn: TxnId) -> dict[Resource, tuple[Mode, ...]]:
        """Every lock held by ``txn``."""
        held = self._held_by_txn.get(txn, OrderedDict())
        result: dict[Resource, tuple[Mode, ...]] = {}
        for resource in held:
            entry = self._entries.get(resource)
            if entry and txn in entry.holders:
                result[resource] = tuple(entry.holders[txn])
        return result

    def holds(self, txn: TxnId, resource: Resource, mode: Mode | None = None) -> bool:
        """Whether ``txn`` holds (that mode of) a lock on ``resource``."""
        entry = self._entries.get(resource)
        if entry is None or txn not in entry.holders:
            return False
        if mode is None:
            return True
        return mode in entry.holders[txn]

    def waits_for_edges(self) -> dict[TxnId, set[TxnId]]:
        """The waits-for relation induced by the current queues.

        A waiter points at every transaction holding an incompatible mode on
        the resource it is queued for, and at every *earlier* waiter whose
        queued mode conflicts with its own (the FIFO fairness rule makes the
        later request wait for the earlier one to be granted and released).
        """
        edges: dict[TxnId, set[TxnId]] = {}
        for resource, entry in self._entries.items():
            for position, waiting in enumerate(entry.queue):
                blockers = set(self._blockers(entry, waiting.txn, resource, waiting.mode))
                for earlier in entry.queue[:position]:
                    if earlier.txn != waiting.txn and \
                            not self._compatible(resource, earlier.mode, waiting.mode):
                        blockers.add(earlier.txn)
                if blockers:
                    edges.setdefault(waiting.txn, set()).update(blockers)
        return edges

    def blocked_transactions(self) -> frozenset[TxnId]:
        """Transactions with at least one queued (not yet granted) request."""
        blocked = set()
        for entry in self._entries.values():
            blocked.update(w.txn for w in entry.queue)
        return frozenset(blocked)

    # -- internals ---------------------------------------------------------------

    def _blockers(self, entry: _ResourceEntry, txn: TxnId, resource: Resource,
                  mode: Mode) -> list[TxnId]:
        if self._use_masks and txn not in entry.holders:
            # Fast path: every holder is another transaction, so a clear
            # intersection between the granted mask and this mode's conflict
            # row means there is nothing to scan for.
            self.stats.mask_checks += 1
            row = entry.conflict.get(mode)
            if row is None:
                row = self._register_mode(entry, resource, mode)
            if entry.granted_mask & row == 0:
                self.stats.fast_grants += 1
                return []
        blockers = []
        for holder, modes in entry.holders.items():
            if holder == txn:
                continue
            if any(not self._compatible(resource, held, mode) for held in modes):
                blockers.append(holder)
        return blockers

    def _queue_blocks(self, entry: _ResourceEntry, txn: TxnId, resource: Resource,
                      mode: Mode) -> bool:
        """FIFO fairness: a new request waits behind conflicting queued ones.

        A transaction that already holds a lock on the resource bypasses the
        queue (conversion requests jump ahead, the standard treatment that
        keeps upgrades from deadlocking behind newcomers).
        """
        if txn in entry.holders:
            return False
        return any(not self._compatible(resource, waiting.mode, mode)
                   for waiting in entry.queue if waiting.txn != txn)

    def _grant(self, entry: _ResourceEntry, txn: TxnId, resource: Resource,
               mode: Mode) -> None:
        entry.holders.setdefault(txn, []).append(mode)
        self._held_by_txn.setdefault(txn, OrderedDict())[resource] = None
        bit = entry.mode_bits.get(mode)
        if bit is None:
            self._register_mode(entry, resource, mode)
            bit = entry.mode_bits[mode]
        entry.grant_counts[bit] = entry.grant_counts.get(bit, 0) + 1
        entry.granted_mask |= bit

    def _register_mode(self, entry: _ResourceEntry, resource: Resource,
                       mode: Mode) -> int:
        """Assign ``mode`` a bit on this resource and fill its conflict row.

        Compatibility is directed (``compatible(resource, held, requested)``),
        so registering a new mode both builds its own row and extends the
        rows of every previously seen mode.
        """
        bit = 1 << len(entry.mode_bits)
        entry.mode_bits[mode] = bit
        row = 0 if self._probe_compatible(resource, mode, mode) else bit
        for other, other_bit in entry.mode_bits.items():
            if other == mode:
                continue
            if not self._probe_compatible(resource, other, mode):
                row |= other_bit
            if not self._probe_compatible(resource, mode, other):
                entry.conflict[other] |= bit
        entry.conflict[mode] = row
        return row

    def _probe_compatible(self, resource: Resource, held: Mode, requested: Mode) -> bool:
        try:
            return bool(self._compatible(resource, held, requested))
        except Exception:
            # Unknown mode/resource pairs must keep surfacing their real
            # error on the slow path (as the scan-based manager did); the
            # mask merely records a conservative conflict.
            return False

    def _retire_modes(self, entry: _ResourceEntry, modes: Iterable[Mode]) -> None:
        for mode in modes:
            bit = entry.mode_bits.get(mode)
            if bit is None:
                continue
            remaining = entry.grant_counts.get(bit, 0) - 1
            if remaining > 0:
                entry.grant_counts[bit] = remaining
            else:
                entry.grant_counts.pop(bit, None)
                entry.granted_mask &= ~bit

    def _remove_from_queue(self, resource: Resource, txn: TxnId, mode: Mode) -> None:
        entry = self._entries.get(resource)
        if entry is None:
            return
        for position, waiting in enumerate(entry.queue):
            if waiting.txn == txn and waiting.mode == mode:
                del entry.queue[position]
                return
