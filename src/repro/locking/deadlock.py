"""Waits-for graph and deadlock detection.

The simulator and the transaction manager build a waits-for graph from the
lock manager's queues; a cycle in that graph is a deadlock and one of the
transactions on the cycle is chosen as the victim.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Mapping, TypeVar

Txn = TypeVar("Txn", bound=Hashable)


def choose_victim(cycle: Iterable[Txn],
                  key: Callable[[Txn], Hashable] | None = None) -> Txn:
    """Pick the deadlock victim of ``cycle``: the *youngest* transaction.

    Without ``key``, transactions are compared by their identifier (allocated
    monotonically, so "largest" means "started last").  A ``key`` lets the
    caller substitute a different notion of age — the threaded engine passes
    the transaction's *original* begin timestamp so that a retried
    incarnation inherits its first incarnation's seniority (wait-die style)
    instead of always looking youngest and being re-victimised forever.
    """
    if key is None:
        return max(cycle)
    return max(cycle, key=key)


def find_cycle(edges: Mapping[Txn, Iterable[Txn]]) -> tuple[Txn, ...]:
    """Return one cycle of the directed graph ``edges``, or ``()`` if none.

    The cycle is returned as the sequence of nodes along it (without
    repeating the first node at the end).
    """
    adjacency = {node: tuple(targets) for node, targets in edges.items()}
    WHITE, GREY, BLACK = 0, 1, 2
    colour: dict[Txn, int] = {}
    for node in adjacency:
        colour.setdefault(node, WHITE)
        for target in adjacency[node]:
            colour.setdefault(target, WHITE)

    path: list[Txn] = []

    def visit(node: Txn) -> tuple[Txn, ...]:
        colour[node] = GREY
        path.append(node)
        for target in adjacency.get(node, ()):
            if colour[target] == GREY:
                start = path.index(target)
                return tuple(path[start:])
            if colour[target] == WHITE:
                cycle = visit(target)
                if cycle:
                    return cycle
        colour[node] = BLACK
        path.pop()
        return ()

    for node in list(colour):
        if colour[node] == WHITE:
            cycle = visit(node)
            if cycle:
                return cycle
    return ()


class WaitsForGraph:
    """A mutable waits-for graph with cycle detection and victim selection."""

    def __init__(self) -> None:
        self._edges: dict[Hashable, set[Hashable]] = {}

    def add_wait(self, waiter: Hashable, holder: Hashable) -> None:
        """Record that ``waiter`` waits for ``holder``."""
        if waiter == holder:
            return
        self._edges.setdefault(waiter, set()).add(holder)

    def remove_transaction(self, txn: Hashable) -> None:
        """Drop a transaction and every edge touching it."""
        self._edges.pop(txn, None)
        for targets in self._edges.values():
            targets.discard(txn)

    def clear_waiter(self, waiter: Hashable) -> None:
        """Drop the outgoing edges of a transaction (it stopped waiting)."""
        self._edges.pop(waiter, None)

    @property
    def edges(self) -> dict[Hashable, frozenset[Hashable]]:
        """A read-only snapshot of the graph."""
        return {waiter: frozenset(holders) for waiter, holders in self._edges.items()}

    def find_deadlock(self) -> tuple[Hashable, ...]:
        """Return one deadlock cycle, or ``()`` when the graph is acyclic."""
        return find_cycle(self._edges)

    def choose_victim(self, cycle: tuple[Hashable, ...],
                      key: Callable[[Hashable], Hashable] | None = None) -> Hashable:
        """Pick the victim of a deadlock: the youngest transaction on the cycle.

        By default transactions are compared by their identifier, which the
        transaction manager allocates monotonically, so "largest id" means
        "started last"; aborting the youngest transaction wastes the least
        work.  ``key`` substitutes a different age order (see
        :func:`choose_victim`).
        """
        return choose_victim(cycle, key)
