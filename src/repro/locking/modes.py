"""Lock modes used by the different protocols.

Three families of modes coexist in the reproduction:

* **method access modes** — the paper's contribution: on instances the mode
  *is* the method name, and compatibility is the per-class commutativity
  table (Table 2); on classes the mode is a :class:`ClassLockMode` pair
  ``(method, hierarchical?)`` (§5.2);
* **read/write modes** (``"R"``/``"W"``) with the classical Table 1
  semantics — used by the baselines for instance, tuple and field locks;
* **multigranularity modes** (``IS``/``IX``/``S``/``X``) for class and
  relation locks in the baselines (Gray's hierarchical locking).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

# ---------------------------------------------------------------------------
# Read / write
# ---------------------------------------------------------------------------

#: Classical compatibility between plain read and write locks.
RW_COMPATIBILITY: dict[tuple[str, str], bool] = {
    ("R", "R"): True,
    ("R", "W"): False,
    ("W", "R"): False,
    ("W", "W"): False,
}


def rw_compatible(first: str, second: str) -> bool:
    """Compatibility of plain ``"R"``/``"W"`` modes."""
    return RW_COMPATIBILITY[(first, second)]


# ---------------------------------------------------------------------------
# Multigranularity (IS / IX / S / X)
# ---------------------------------------------------------------------------

#: Gray's compatibility matrix for intention and absolute modes.
MULTIGRANULARITY_COMPATIBILITY: dict[tuple[str, str], bool] = {
    ("IS", "IS"): True, ("IS", "IX"): True, ("IS", "S"): True, ("IS", "X"): False,
    ("IX", "IS"): True, ("IX", "IX"): True, ("IX", "S"): False, ("IX", "X"): False,
    ("S", "IS"): True, ("S", "IX"): False, ("S", "S"): True, ("S", "X"): False,
    ("X", "IS"): False, ("X", "IX"): False, ("X", "S"): False, ("X", "X"): False,
}


def multigranularity_compatible(first: str, second: str) -> bool:
    """Compatibility of ``IS``/``IX``/``S``/``X`` modes."""
    return MULTIGRANULARITY_COMPATIBILITY[(first, second)]


def intention_of(mode: str) -> str:
    """The intention mode corresponding to an absolute ``R``/``W`` mode."""
    return {"R": "IS", "W": "IX"}[mode]


def absolute_of(mode: str) -> str:
    """The absolute (hierarchical) mode corresponding to ``R``/``W``."""
    return {"R": "S", "W": "X"}[mode]


# ---------------------------------------------------------------------------
# Class locks for the paper's protocol
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ClassLockMode:
    """A class lock of the paper's protocol: ``(access mode, hierarchical?)``.

    ``method`` is the access mode (the method name); ``hierarchical`` tells
    whether the lock covers every instance of the class (like ``S``/``X`` in
    multigranularity locking) or is merely intentional (like ``IS``/``IX``),
    §5.2.
    """

    method: str
    hierarchical: bool

    def __str__(self) -> str:
        kind = "hierarchical" if self.hierarchical else "intentional"
        return f"({self.method}, {kind})"


@dataclass(frozen=True)
class EscrowMode:
    """A non-exclusive counter-update lock on one numeric field.

    Granted to methods the compiler proved to be pure increments or
    decrements of a single field (``f := f ± expr`` with the delta computed
    from parameters and literals only).  Two escrow locks always commute —
    the deltas are merged at commit and undone as inverse deltas — while an
    escrow lock conflicts with every ordinary mode touching the instance.
    """

    method: str
    field: str

    def __str__(self) -> str:
        return f"escrow({self.method}:{self.field})"


def escrow_compatible(first: object, second: object) -> bool | None:
    """Escrow-aware compatibility overlay for instance locks.

    Returns ``True``/``False`` when at least one mode is an
    :class:`EscrowMode` (escrow/escrow pairs commute, escrow/ordinary pairs
    conflict), or ``None`` when neither is — the caller falls through to the
    protocol's own table.
    """
    first_escrow = isinstance(first, EscrowMode)
    second_escrow = isinstance(second, EscrowMode)
    if first_escrow and second_escrow:
        return True
    if first_escrow or second_escrow:
        return False
    return None


def class_lock_compatible(first: ClassLockMode, second: ClassLockMode,
                          commutes: Callable[[str, str], bool]) -> bool:
    """Compatibility between two class locks of the paper's protocol.

    Two intentional locks never conflict at the class level (the real check
    happens on the instances, as with ``IS``/``IX``).  As soon as one of the
    locks is hierarchical, "commutativity depends on the access modes"
    (§5.2): the class lock conflict is decided by the commutativity of the
    two method modes.
    """
    if not first.hierarchical and not second.hierarchical:
        return True
    return commutes(first.method, second.method)
