"""Locking: lock modes, the lock manager and deadlock detection.

The lock manager is *generic over the commutativity relation*: it stores, per
resource, which transactions hold which modes and whether a requested mode is
compatible is decided by a callable supplied by the concurrency-control
protocol.  This is what lets the same manager serve the paper's per-method
access modes, the classical read/write baseline, the relational decomposition
and the run-time field-locking scheme without special cases.
"""

from repro.locking.modes import (
    ClassLockMode,
    EscrowMode,
    MULTIGRANULARITY_COMPATIBILITY,
    RW_COMPATIBILITY,
    class_lock_compatible,
    escrow_compatible,
    multigranularity_compatible,
    rw_compatible,
)
from repro.locking.deadlock import WaitsForGraph, choose_victim, find_cycle
from repro.locking.manager import (
    LockManager,
    LockRequestOutcome,
    LockManagerStats,
    RequestStatus,
    USE_DEFAULT_TIMEOUT,
)

__all__ = [
    "ClassLockMode",
    "EscrowMode",
    "escrow_compatible",
    "LockManager",
    "LockManagerStats",
    "LockRequestOutcome",
    "MULTIGRANULARITY_COMPATIBILITY",
    "RW_COMPATIBILITY",
    "RequestStatus",
    "USE_DEFAULT_TIMEOUT",
    "WaitsForGraph",
    "choose_victim",
    "class_lock_compatible",
    "find_cycle",
    "multigranularity_compatible",
    "rw_compatible",
]
