"""Deterministic discrete-event simulator for concurrent transactions.

Each transaction is a :class:`~repro.sim.workload.TransactionSpec` — a
sequence of operations.  The simulator advances logical time in steps; at
every step each runnable transaction (round-robin, identifier order) makes a
bounded amount of progress:

1. when it has no operation in flight it *plans* the next one through the
   protocol;
2. it then acquires the planned locks one request per step through the real
   :class:`~repro.locking.manager.LockManager`; a request that must wait
   blocks the transaction until the lock is granted by some release;
3. once every lock is held, the plan is refreshed (data may have changed
   while the transaction was blocked, which can add lock requests); when the
   refreshed plan adds nothing new, before-images are logged and the
   operation executes atomically in that step.

Blocking is resolved through the lock manager's queues; after every blocking
event the waits-for graph is checked and, if a cycle exists, the youngest
transaction on the cycle is aborted (its writes undone, its locks released)
and optionally restarted from its first operation.

The simulator never consults the wall clock and uses no randomness of its
own, so a given (protocol, store, workload) triple always produces the same
schedule and the same metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import SimulationError
from repro.locking.deadlock import find_cycle
from repro.objects.interpreter import Interpreter
from repro.sim.metrics import SimulationMetrics
from repro.sim.workload import TransactionSpec
from repro.txn.protocols.base import ConcurrencyControlProtocol, LockPlan
from repro.txn.recovery import RecoveryManager


@dataclass
class _RunningTransaction:
    """Book-keeping for one transaction incarnation inside the simulator."""

    txn_id: int
    spec: TransactionSpec
    #: Index of the next operation to start (or currently in flight).
    operation_index: int = 0
    #: The plan of the operation in flight, if any.
    plan: LockPlan | None = None
    #: Index of the next lock request of the plan to acquire.
    request_index: int = 0
    #: Whether the plan has been refreshed after acquisition.
    replanned: bool = False
    blocked: bool = False
    finished: bool = False
    aborted: bool = False
    restarts: int = 0
    #: Step before which a restarted incarnation stays dormant (back-off).
    resume_at_step: int = 0
    #: Original spec label (kept across restarts).
    label: str = ""


@dataclass
class SimulationResult:
    """Outcome of one simulation: metrics plus the per-transaction states."""

    metrics: SimulationMetrics
    committed_labels: tuple[str, ...] = ()
    aborted_labels: tuple[str, ...] = ()
    results: dict[str, list[Any]] = field(default_factory=dict)


class Simulator:
    """Runs a set of transactions under one protocol on a logical timeline."""

    def __init__(self, protocol: ConcurrencyControlProtocol, *,
                 restart_victims: bool = True, max_restarts: int = 25,
                 max_steps: int = 1_000_000) -> None:
        self._protocol = protocol
        self._store = protocol.store
        self._locks = protocol.create_lock_manager()
        self._recovery = RecoveryManager(self._store)
        self._interpreter = Interpreter(self._store)
        self._restart_victims = restart_victims
        self._max_restarts = max_restarts
        self._max_steps = max_steps

    # -- public ---------------------------------------------------------------------

    def run(self, specs: list[TransactionSpec]) -> SimulationResult:
        """Simulate the given transactions to completion and return metrics."""
        metrics = SimulationMetrics()
        transactions: dict[int, _RunningTransaction] = {}
        next_id = 1
        for spec in specs:
            transactions[next_id] = _RunningTransaction(
                txn_id=next_id, spec=spec, label=spec.label or f"txn-{next_id}")
            next_id += 1

        results: dict[str, list[Any]] = {t.label: [] for t in transactions.values()}
        committed: list[str] = []
        aborted: list[str] = []

        step = 0
        while any(not t.finished for t in transactions.values()):
            step += 1
            if step > self._max_steps:
                raise SimulationError(
                    f"simulation exceeded {self._max_steps} steps; "
                    "probable livelock in the workload")
            self._refresh_blocked_flags(transactions)
            runnable = [t for t in transactions.values()
                        if not t.finished and not t.blocked
                        and t.resume_at_step <= step]
            metrics.active_steps += len(runnable)
            for transaction in list(transactions.values()):
                if transaction.finished or transaction.blocked or \
                        transaction.resume_at_step > step:
                    if transaction.blocked and not transaction.finished:
                        metrics.blocked_steps[transaction.txn_id] = \
                            metrics.blocked_steps.get(transaction.txn_id, 0) + 1
                    continue
                self._advance(transaction, metrics, results)
                if transaction.finished and not transaction.aborted:
                    committed.append(transaction.label)
                    metrics.committed += 1
                    self._finish(transaction)
            victim = self._resolve_deadlock(transactions, metrics)
            if victim is not None:
                restarted = self._abort(victim, metrics, current_step=step)
                if restarted is not None:
                    transactions[restarted.txn_id] = restarted
                    results.setdefault(restarted.label, [])
                else:
                    aborted.append(victim.label)

        metrics.makespan = step
        return SimulationResult(metrics=metrics,
                                committed_labels=tuple(committed),
                                aborted_labels=tuple(aborted),
                                results=results)

    # -- stepping -------------------------------------------------------------------

    def _advance(self, transaction: _RunningTransaction, metrics: SimulationMetrics,
                 results: dict[str, list[Any]]) -> None:
        if transaction.operation_index >= len(transaction.spec.operations):
            transaction.finished = True
            return
        operation = transaction.spec.operations[transaction.operation_index]

        if transaction.plan is None:
            transaction.plan = self._protocol.plan(operation)
            transaction.request_index = 0
            transaction.replanned = False
            metrics.control_points += transaction.plan.control_points

        plan = transaction.plan
        if transaction.request_index < len(plan.requests):
            request = plan.requests[transaction.request_index]
            metrics.lock_requests += 1
            before_upgrades = self._locks.stats.upgrades
            outcome = self._locks.request(transaction.txn_id, request.resource,
                                          request.mode)
            metrics.upgrades += self._locks.stats.upgrades - before_upgrades
            if outcome.granted:
                transaction.request_index += 1
            else:
                metrics.waits += 1
                transaction.blocked = True
            return

        if not transaction.replanned:
            # Every planned lock is held; refresh the plan in case the data
            # changed while the transaction was waiting.
            refreshed = self._protocol.plan(operation)
            held = {(r.resource, r.mode) for r in plan.requests}
            extra = tuple(r for r in refreshed.requests
                          if (r.resource, r.mode) not in held)
            if extra:
                transaction.plan = LockPlan(
                    requests=plan.requests + extra,
                    control_points=plan.control_points,
                    receivers=refreshed.receivers,
                    undo_projections=refreshed.undo_projections)
                return
            transaction.plan = LockPlan(requests=plan.requests,
                                        control_points=plan.control_points,
                                        receivers=refreshed.receivers,
                                        undo_projections=refreshed.undo_projections)
            transaction.replanned = True
            return

        # Execute the operation atomically.
        for oid, fields in self._protocol.undo_projections(transaction.plan):
            self._recovery.log_before_image(transaction.txn_id, oid, fields)
        outcome = self._protocol.execute(operation, self._interpreter)
        results[transaction.label].append(outcome)
        metrics.operations += 1
        transaction.operation_index += 1
        transaction.plan = None
        if transaction.operation_index >= len(transaction.spec.operations):
            transaction.finished = True

    # -- completion, blocking and deadlocks ----------------------------------------------

    def _finish(self, transaction: _RunningTransaction) -> None:
        self._recovery.forget(transaction.txn_id)
        self._locks.release_all(transaction.txn_id)

    def _resolve_deadlock(self, transactions: dict[int, _RunningTransaction],
                          metrics: SimulationMetrics) -> _RunningTransaction | None:
        edges = self._locks.waits_for_edges()
        cycle = find_cycle(edges)
        if not cycle:
            return None
        metrics.deadlocks += 1
        victim_id = max(cycle)
        return transactions[victim_id]

    def _refresh_blocked_flags(self, transactions: dict[int, _RunningTransaction]) -> None:
        queued = self._locks.blocked_transactions()
        for transaction in transactions.values():
            if transaction.finished:
                continue
            if transaction.blocked and transaction.txn_id not in queued:
                # The queued request was granted by some release.
                transaction.blocked = False
                transaction.request_index += 1

    def _abort(self, victim: _RunningTransaction, metrics: SimulationMetrics,
               current_step: int = 0) -> _RunningTransaction | None:
        metrics.aborted += 1
        self._recovery.undo(victim.txn_id)
        self._locks.release_all(victim.txn_id)
        victim.finished = True
        victim.aborted = True
        victim.blocked = False
        if self._restart_victims and victim.restarts < self._max_restarts:
            metrics.restarts += 1
            # The recovery manager sealed the undo log when it replayed it;
            # reusing the id below is deliberate, so say so.
            self._recovery.reopen(victim.txn_id)
            # The restarted incarnation keeps its transaction identifier: all
            # locks were released, and keeping the id avoids making restarted
            # transactions perpetually the youngest (and thus perpetual
            # victims).  A linear back-off keeps repeated victims from
            # thrashing against the transactions that blocked them.
            restarted = _RunningTransaction(
                txn_id=victim.txn_id,
                spec=victim.spec,
                restarts=victim.restarts + 1,
                resume_at_step=current_step + 4 * (victim.restarts + 1),
                label=victim.label)
            return restarted
        return None

    # -- introspection ----------------------------------------------------------------

    @property
    def lock_manager(self):
        """The lock manager used by this simulation (for tests)."""
        return self._locks
