"""A TPC-C-style order-entry scenario over :func:`order_entry_schema`.

The scenario is the workload the runtime optimisations were built for:

* **Sale transactions** hammer a handful of ``Warehouse`` counters
  (``record_sale``/``note_order``) and pair a ``Stock.take_stock(count)``
  with a ``Stock.record_sold(count)`` of the *same* count — every method a
  pure counter update, so under ``Engine(escrow=True)`` the whole
  transaction runs in escrow mode and concurrent sales never block on the
  hot counters.
* **Query transactions** (``activity_report``/``stock_level``) are marked
  ``read_only=True`` so drivers route them down the engine's lock-free
  snapshot path.

Because each sale moves ``count`` units from ``quantity`` to ``sold`` on
one ``Stock``, the sum ``quantity + sold`` is *conserved* per stock item no
matter which subset of transactions commits, in which serialisation order,
and whether they ran escrowed or exclusively.  That gives the
sequential-replay verifier a second, workload-level invariant:
:func:`conservation_violations` compares the totals of the initial and
final store states and returns every stock item whose units leaked.  A
non-empty answer means lost or duplicated updates — exactly the failure a
broken escrow merge (or a non-serializable schedule) would produce.
"""

from __future__ import annotations

import random
from typing import Any, Mapping

from repro.errors import SimulationError
from repro.objects.store import ObjectStore
from repro.sim.workload import TransactionSpec
from repro.txn.operations import MethodCall

#: Field pairs whose per-instance sum every sale conserves.
CONSERVED_FIELDS: Mapping[str, tuple[str, ...]] = {"Stock": ("quantity", "sold")}


def order_entry_specs(store: ObjectStore, transactions: int, *,
                      read_mix: float = 0.0, seed: int = 17,
                      items_per_sale: int = 2) -> list[TransactionSpec]:
    """A deterministic order-entry mix over a populated order-entry store.

    Each sale picks one warehouse and ``items_per_sale`` stock items, posts
    the sale amount to the warehouse counters, and moves a random ``count``
    of units from each item's ``quantity`` to its ``sold`` — conserving
    ``quantity + sold``.  With probability ``read_mix`` a transaction is
    instead a read-only query (``read_only=True``) over the same instances.
    """
    rng = random.Random(seed)
    warehouses = store.extent("Warehouse")
    stocks = store.extent("Stock")
    if not warehouses or not stocks:
        raise SimulationError("the order-entry scenario needs at least one "
                              "Warehouse and one Stock instance")
    specs: list[TransactionSpec] = []
    for index in range(transactions):
        label = f"order-{index}"
        warehouse = rng.choice(warehouses)
        if read_mix and rng.random() < read_mix:
            picked = rng.sample(stocks, min(items_per_sale, len(stocks)))
            operations = [MethodCall(oid=warehouse, method="activity_report")]
            operations += [MethodCall(oid=stock, method="stock_level")
                           for stock in picked]
            specs.append(TransactionSpec(operations=tuple(operations),
                                         label=label, read_only=True))
            continue
        amount = float(rng.randint(1, 500))
        operations = [
            MethodCall(oid=warehouse, method="record_sale",
                       arguments=(amount,)),
            MethodCall(oid=warehouse, method="note_order"),
        ]
        for stock in rng.sample(stocks, min(items_per_sale, len(stocks))):
            count = rng.randint(1, 10)
            operations.append(MethodCall(oid=stock, method="take_stock",
                                         arguments=(count,)))
            operations.append(MethodCall(oid=stock, method="record_sold",
                                         arguments=(count,)))
        specs.append(TransactionSpec(operations=tuple(operations),
                                     label=label))
    return specs


def conserved_totals(state: Mapping[str, Mapping[str, Any]]) -> dict[str, int]:
    """Per-instance conserved sums of a ``store_state()``-style snapshot."""
    totals: dict[str, int] = {}
    for oid, values in state.items():
        for class_name, fields in CONSERVED_FIELDS.items():
            if oid.startswith(f"{class_name}#") and all(
                    name in values for name in fields):
                totals[oid] = sum(values[name] for name in fields)
    return totals


def conservation_violations(
        initial: Mapping[str, Mapping[str, Any]],
        final: Mapping[str, Mapping[str, Any]]) -> list[str]:
    """Stock items whose ``quantity + sold`` changed between two states.

    Every committed (or aborted-and-undone) sale conserves the sum, so any
    difference is a lost or duplicated update — the signature of a broken
    escrow merge or a non-serializable schedule.  Returns human-readable
    descriptions, one per leaking instance; empty means the invariant held.
    """
    before = conserved_totals(initial)
    after = conserved_totals(final)
    violations = []
    for oid in sorted(before):
        if oid not in after:
            violations.append(f"{oid}: instance disappeared")
        elif before[oid] != after[oid]:
            violations.append(f"{oid}: quantity+sold drifted "
                              f"{before[oid]} -> {after[oid]}")
    return violations
