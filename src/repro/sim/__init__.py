"""Workload generation and concurrency simulation.

The paper's claims are about *which* concurrent executions a protocol admits
and how much locking work it performs, not about milliseconds on particular
hardware — and a pure-Python reproduction could not measure the latter
meaningfully anyway (GIL).  This package therefore provides a deterministic
discrete-event simulator: transactions are sequences of operations, the
simulator interleaves their lock acquisitions on a logical timeline, blocks
and resumes them through the real lock manager, detects deadlocks and aborts
victims, and reports structural metrics (lock requests, control points,
waits, escalations, deadlocks, makespan).
"""

from repro.sim.metrics import SimulationMetrics
from repro.sim.order_entry import (
    conservation_violations,
    conserved_totals,
    order_entry_specs,
)
from repro.sim.workload import TransactionSpec, WorkloadGenerator, populate_store
from repro.sim.schema_gen import SchemaGenerator
from repro.sim.simulator import Simulator, SimulationResult
from repro.sim.scenario import (
    ScenarioTransaction,
    build_section5_scenario,
    admitted_sets,
    pairwise_compatibility,
)

__all__ = [
    "ScenarioTransaction",
    "SchemaGenerator",
    "SimulationMetrics",
    "SimulationResult",
    "Simulator",
    "TransactionSpec",
    "WorkloadGenerator",
    "admitted_sets",
    "build_section5_scenario",
    "conservation_violations",
    "conserved_totals",
    "order_entry_specs",
    "pairwise_compatibility",
    "populate_store",
]
