"""Metrics collected by the simulator and the benchmark harness."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SimulationMetrics:
    """Structural concurrency metrics for one simulation run.

    All counts are totals over the run unless stated otherwise.
    """

    #: Transactions that committed (restarted incarnations count once).
    committed: int = 0
    #: Deadlock-victim aborts (every abort of an incarnation counts).
    aborted: int = 0
    #: Victims that were restarted.
    restarts: int = 0
    #: Deadlock cycles detected.
    deadlocks: int = 0
    #: Lock-manager requests issued.
    lock_requests: int = 0
    #: Concurrency-control invocations (the §3 "locking overhead" metric).
    control_points: int = 0
    #: Requests that had to wait.
    waits: int = 0
    #: Lock conversions (a transaction adding a different mode on a held
    #: resource) — read→write escalations in the RW protocols.
    upgrades: int = 0
    #: Simulated time steps until every transaction finished.
    makespan: int = 0
    #: Sum over steps of the number of transactions not blocked and not
    #: finished (divide by makespan for average achieved concurrency).
    active_steps: int = 0
    #: Operations executed successfully.
    operations: int = 0

    #: Per-transaction wait steps (txn id -> steps spent blocked).
    blocked_steps: dict[int, int] = field(default_factory=dict)

    @property
    def average_concurrency(self) -> float:
        """Average number of runnable transactions per step."""
        if self.makespan == 0:
            return 0.0
        return self.active_steps / self.makespan

    @property
    def total_blocked_steps(self) -> int:
        """Total steps any transaction spent blocked."""
        return sum(self.blocked_steps.values())

    @property
    def throughput(self) -> float:
        """Committed transactions per simulated step."""
        if self.makespan == 0:
            return 0.0
        return self.committed / self.makespan

    def as_row(self) -> dict[str, float]:
        """A flat dictionary used by the benchmark reports."""
        return {
            "committed": self.committed,
            "aborted": self.aborted,
            "deadlocks": self.deadlocks,
            "lock_requests": self.lock_requests,
            "control_points": self.control_points,
            "waits": self.waits,
            "upgrades": self.upgrades,
            "makespan": self.makespan,
            "blocked_steps": self.total_blocked_steps,
            "avg_concurrency": round(self.average_concurrency, 3),
            "throughput": round(self.throughput, 4),
        }
