"""Workload generation: populating stores and producing transaction mixes.

The generator is deterministic (seeded :class:`random.Random`) so that every
benchmark run regenerates exactly the same workload.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.objects.oid import OID
from repro.objects.store import ObjectStore
from repro.schema import BaseType, Schema
from repro.txn.operations import (
    DomainAllCall,
    DomainSomeCall,
    ExtentCall,
    MethodCall,
    Operation,
)


@dataclass
class TransactionSpec:
    """The operations one transaction wants to run, in order."""

    operations: tuple[Operation, ...]
    label: str = ""
    #: The transaction promises to only read: drivers begin it with
    #: ``read_only=True`` so the engine can serve it from a committed
    #: snapshot without acquiring a single lock.
    read_only: bool = False

    def __len__(self) -> int:
        return len(self.operations)


def _default_value_for(base: BaseType, rng: random.Random) -> object:
    if base is BaseType.INTEGER:
        return rng.randint(0, 1000)
    if base is BaseType.FLOAT:
        return round(rng.uniform(0.0, 1000.0), 2)
    if base is BaseType.BOOLEAN:
        return rng.random() < 0.5
    return f"s{rng.randint(0, 9999)}"


def populate_store(schema: Schema, instances_per_class: int | dict[str, int],
                   seed: int = 0, link_references: bool = True,
                   store: ObjectStore | None = None) -> ObjectStore:
    """Create a store and fill it with randomly initialised instances.

    ``instances_per_class`` is either a single count applied to every class or
    a per-class mapping.  When ``link_references`` is true, reference fields
    are pointed at a random instance of the referenced class (or of one of
    its subclasses) so that methods sending messages through references can
    actually run.

    ``store`` lets the caller populate an existing *empty* store instead of a
    fresh :class:`ObjectStore` — the throughput harness passes a
    :class:`~repro.sharding.store.ShardedObjectStore` here, and because both
    store kinds allocate OIDs from one monotone counter in the same creation
    order, a sharded store and a plain replica populated with the same
    arguments hold byte-identical instances under identical OIDs.
    """
    rng = random.Random(seed)
    if store is None:
        store = ObjectStore(schema)
    elif len(store) != 0:
        raise SimulationError("populate_store needs an empty store; "
                              f"this one already holds {len(store)} instances")
    created: dict[str, list[OID]] = {name: [] for name in schema.class_names}

    def count_for(class_name: str) -> int:
        if isinstance(instances_per_class, dict):
            return instances_per_class.get(class_name, 0)
        return instances_per_class

    for class_name in schema.class_names:
        for _ in range(count_for(class_name)):
            values = {}
            for field_name, spec in schema.fields(class_name).items():
                if spec.type.is_reference:
                    continue
                values[field_name] = _default_value_for(spec.type.base, rng)
            instance = store.create(class_name, **values)
            created[class_name].append(instance.oid)

    if link_references:
        for class_name in schema.class_names:
            for field_name, spec in schema.fields(class_name).items():
                if not spec.type.is_reference:
                    continue
                candidates: list[OID] = []
                for target in schema.domain(spec.type.reference):
                    candidates.extend(created[target])
                if not candidates:
                    continue
                for oid in created[class_name]:
                    store.write_field(oid, field_name, rng.choice(candidates))
    return store


@dataclass
class WorkloadGenerator:
    """Produces random but reproducible transaction mixes over a store.

    Attributes:
        schema: the schema the store follows.
        store: the populated object store.
        seed: RNG seed (the generator owns its own :class:`random.Random`).
        operations_per_transaction: how many operations each transaction runs.
        extent_fraction: probability that an operation is an extent scan of a
            class instead of a single-instance call.
        domain_fraction: probability that an operation addresses a whole
            domain (kind iii/iv) rather than a single class.
        write_bias: probability of choosing a *writing* method when both
            readers and writers are available on the chosen class.
        hotspot_fraction: fraction of single-instance calls directed at a
            small hot set of instances (drives conflict rates up).
        read_mix: fraction of transactions that are declared *read-only* —
            built from reader methods exclusively and marked
            ``read_only=True`` so drivers route them down the engine's
            lock-free snapshot path.
        method_filter: optional predicate restricting which methods are used.
    """

    schema: Schema
    store: ObjectStore
    seed: int = 0
    operations_per_transaction: int = 4
    extent_fraction: float = 0.05
    domain_fraction: float = 0.05
    write_bias: float = 0.5
    hotspot_fraction: float = 0.2
    hotspot_size: int = 4
    read_mix: float = 0.0
    method_filter: object = None
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self._hot: dict[str, tuple[OID, ...]] = {}

    # -- public ----------------------------------------------------------------------

    def transactions(self, count: int) -> list[TransactionSpec]:
        """Generate ``count`` transaction specifications."""
        return [self.transaction(label=f"txn-{index}") for index in range(count)]

    def transaction(self, label: str = "") -> TransactionSpec:
        """Generate one transaction specification."""
        if self.read_mix and self._rng.random() < self.read_mix:
            spec = self._read_only_transaction(label)
            if spec is not None:
                return spec
        operations = tuple(self._operation()
                           for _ in range(self.operations_per_transaction))
        return TransactionSpec(operations=operations, label=label)

    # -- internals -------------------------------------------------------------------

    def _read_only_transaction(self, label: str) -> TransactionSpec | None:
        """A transaction built from reader methods only, or ``None`` when
        the schema offers no readable class (the caller then falls back to
        an ordinary read/write transaction)."""
        candidates = [name for name in self.schema.class_names
                      if self.store.extent(name) and self._readers(name)]
        if not candidates:
            return None
        operations = []
        for _ in range(self.operations_per_transaction):
            class_name = self._rng.choice(candidates)
            method = self._rng.choice(self._readers(class_name))
            if self._rng.random() < self.extent_fraction:
                operations.append(ExtentCall(
                    class_name=class_name, method=method,
                    arguments=self._arguments(class_name, method)))
                continue
            oid = self._pick_instance(class_name)
            operations.append(MethodCall(
                oid=oid, method=method,
                arguments=self._arguments(oid.class_name, method)))
        return TransactionSpec(operations=tuple(operations), label=label,
                               read_only=True)

    def _readers(self, class_name: str) -> list[str]:
        """Methods provably free of writes, even transitively.

        A read-only transaction must never write, so the classification is
        by *TAV* (the transitive vector folds in self-sends) and any method
        that may send messages to other instances is excluded outright —
        the callee could write fields this class's vectors never mention.
        """
        from repro.core.compiler import compile_schema  # local: avoid cycle
        from repro.core.modes import AccessMode

        if not hasattr(self, "_compiled_for_readers"):
            self._compiled_for_readers = compile_schema(self.schema)
        compiled = self._compiled_for_readers.compiled_class(class_name)
        return [name for name in self.schema.method_names(class_name)
                if compiled.tav(name).top_mode is not AccessMode.WRITE
                and not compiled.has_external_sends(name)]

    def _operation(self) -> Operation:
        class_name = self._pick_class()
        method = self._pick_method(class_name)
        roll = self._rng.random()
        if roll < self.extent_fraction:
            return ExtentCall(class_name=class_name, method=method,
                              arguments=self._arguments(class_name, method))
        if roll < self.extent_fraction + self.domain_fraction:
            root = self._domain_root(class_name)
            # The method must be visible on every class of the domain, so it
            # is re-drawn from the root class.
            domain_method = self._pick_method(root)
            if self._rng.random() < 0.5:
                return DomainAllCall(class_name=root, method=domain_method,
                                     arguments=self._arguments(root, domain_method))
            oids = self._pick_domain_instances(root)
            if oids:
                return DomainSomeCall(class_name=root, method=domain_method, oids=oids,
                                      arguments=self._arguments(root, domain_method))
        oid = self._pick_instance(class_name)
        return MethodCall(oid=oid, method=method,
                          arguments=self._arguments(oid.class_name, method))

    def _pick_class(self) -> str:
        candidates = [name for name in self.schema.class_names
                      if self.store.extent(name) and self.schema.method_names(name)]
        if not candidates:
            raise SimulationError("the store has no instances to build a workload on")
        return self._rng.choice(candidates)

    def _pick_method(self, class_name: str) -> str:
        compiled_methods = self.schema.method_names(class_name)
        candidates = [name for name in compiled_methods
                      if self.method_filter is None or self.method_filter(class_name, name)]
        if not candidates:
            candidates = list(compiled_methods)
        writers = [name for name in candidates if self._writes(class_name, name)]
        readers = [name for name in candidates if name not in writers]
        if writers and (not readers or self._rng.random() < self.write_bias):
            return self._rng.choice(writers)
        return self._rng.choice(readers or writers)

    def _writes(self, class_name: str, method: str) -> bool:
        from repro.core.analysis import analyze_method  # local import to avoid cycle
        from repro.core.modes import AccessMode
        analysis = analyze_method(self.schema, class_name, method)
        return analysis.dav.top_mode is AccessMode.WRITE

    def _pick_instance(self, class_name: str) -> OID:
        extent = self.store.extent(class_name)
        if self._rng.random() < self.hotspot_fraction:
            hot = self._hot_set(class_name)
            if hot:
                return self._rng.choice(hot)
        return self._rng.choice(extent)

    def _hot_set(self, class_name: str) -> tuple[OID, ...]:
        if class_name not in self._hot:
            extent = self.store.extent(class_name)
            self._hot[class_name] = tuple(extent[:self.hotspot_size])
        return self._hot[class_name]

    def _domain_root(self, class_name: str) -> str:
        ancestors = self.schema.ancestors(class_name)
        return ancestors[-1] if ancestors else class_name

    def _pick_domain_instances(self, root: str) -> tuple[OID, ...]:
        extent = self.store.domain_extent(root)
        if not extent:
            return ()
        count = max(1, min(len(extent), self._rng.randint(1, 4)))
        return tuple(self._rng.sample(list(extent), count))

    def _arguments(self, class_name: str, method: str) -> tuple[object, ...]:
        resolved = self.schema.resolve(class_name, method)
        return tuple(self._rng.randint(1, 100)
                     for _ in resolved.definition.parameters)
