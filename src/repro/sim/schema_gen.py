"""Random schema generator.

Used by the scaling and subsumption benchmarks: it produces inheritance
hierarchies with configurable depth and fan-out, methods that reuse each
other through self-directed and prefixed messages, overriding, and methods
confined to subclass fields (the pattern behind the paper's pseudo-conflict
problem).  Generation is deterministic for a given seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.schema import Schema, SchemaBuilder


@dataclass
class SchemaGenerator:
    """Generates synthetic class hierarchies with reusable method code.

    Attributes:
        depth: number of inheritance levels below each root.
        branching: subclasses per class.
        roots: number of independent hierarchies.
        fields_per_class: fields declared by each class.
        methods_per_class: new methods declared by each class.
        self_call_probability: chance that a method body also sends one of
            the already-declared methods to ``self`` (code reuse).
        override_probability: chance that a class overrides an inherited
            method as an extension (prefixed call to the overridden code).
        subclass_local_probability: chance that a new subclass method touches
            only fields declared by its own class (these are the methods a
            read/write classification turns into pseudo-conflicts).
        writer_fraction: fraction of methods that write at least one field.
        seed: RNG seed.
    """

    depth: int = 2
    branching: int = 2
    roots: int = 1
    fields_per_class: int = 3
    methods_per_class: int = 3
    self_call_probability: float = 0.4
    override_probability: float = 0.3
    subclass_local_probability: float = 0.6
    writer_fraction: float = 0.5
    seed: int = 0

    def generate(self) -> Schema:
        """Build the schema."""
        rng = random.Random(self.seed)
        builder = SchemaBuilder()
        class_counter = 0

        def make_class(parent: str | None, level: int) -> None:
            nonlocal class_counter
            class_counter += 1
            name = f"K{class_counter}"
            class_builder = builder.define(name, *( (parent,) if parent else () ))

            own_fields = [f"{name.lower()}_f{index}"
                          for index in range(self.fields_per_class)]
            for field_name in own_fields:
                class_builder.field(field_name, "integer")

            inherited_fields: list[str] = []
            inherited_methods: list[str] = []
            if parent is not None:
                inherited_fields = list(self._known_fields.get(parent, []))
                inherited_methods = list(self._known_methods.get(parent, []))

            declared_methods: list[str] = []
            for index in range(self.methods_per_class):
                method_name = f"{name.lower()}_m{index}"
                body = self._method_body(rng, name, own_fields, inherited_fields,
                                         declared_methods + inherited_methods)
                class_builder.method(method_name, body=body)
                declared_methods.append(method_name)

            if parent is not None and inherited_methods:
                if rng.random() < self.override_probability:
                    overridden = rng.choice(inherited_methods)
                    body_lines = [f"send {parent}.{overridden} to self"]
                    body_lines.append(self._field_statement(rng, own_fields))
                    class_builder.method(overridden, body="\n".join(body_lines))
                    declared_methods.append(overridden)

            self._known_fields[name] = inherited_fields + own_fields
            self._known_methods[name] = inherited_methods + declared_methods

            if level < self.depth:
                for _ in range(self.branching):
                    make_class(name, level + 1)

        self._known_fields: dict[str, list[str]] = {}
        self._known_methods: dict[str, list[str]] = {}
        for _ in range(self.roots):
            make_class(None, 0)
        return builder.build()

    # -- body construction -------------------------------------------------------------

    def _method_body(self, rng: random.Random, class_name: str,
                     own_fields: list[str], inherited_fields: list[str],
                     callable_methods: list[str]) -> str:
        lines: list[str] = []
        local_only = rng.random() < self.subclass_local_probability
        pool = own_fields if (local_only or not inherited_fields) \
            else own_fields + inherited_fields
        lines.append(self._field_statement(rng, pool))
        if rng.random() >= self.writer_fraction:
            # Convert into a pure reader: reference the fields in an expression.
            fields = rng.sample(pool, k=min(2, len(pool)))
            lines = [f"return expr({', '.join(fields)})"]
        if callable_methods and rng.random() < self.self_call_probability:
            lines.insert(0, f"send {rng.choice(callable_methods)} to self")
        return "\n".join(lines)

    def _field_statement(self, rng: random.Random, pool: list[str]) -> str:
        target = rng.choice(pool)
        sources = rng.sample(pool, k=min(2, len(pool)))
        return f"{target} := expr({', '.join(sources)})"
