"""The §5.2 scenario: transactions T1–T4 on the Figure 1 hierarchy.

The paper walks through four concurrent transactions:

* **T1** sends ``m1`` to one instance ``i`` of ``c1``;
* **T2** sends ``m1`` to the extension of class ``c1`` (every instance of the
  domain rooted at ``c1``);
* **T3** sends ``m3`` to several instances of the domain rooted at ``c1``;
* **T4** sends ``m4`` to all instances of the domain rooted at ``c2``;

and concludes that the access-vector scheme admits ``T1‖T3‖T4`` or
``T2‖T3‖T4``, whereas read/write instance locking admits only ``T1‖T3`` or
``T1‖T4`` and the relational decomposition admits ``T1‖T3`` or ``T3‖T4``.
This module builds the scenario and computes, for any protocol, the pairwise
compatibility matrix and the maximal sets of transactions that can hold their
locks simultaneously — the data behind the benchmark that reproduces the
section.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.compiler import CompiledSchema, compile_schema
from repro.errors import LockConflictError
from repro.objects.store import ObjectStore
from repro.schema import Schema
from repro.schema.examples import figure1_schema
from repro.txn.operations import DomainAllCall, DomainSomeCall, MethodCall, Operation
from repro.txn.protocols.base import ConcurrencyControlProtocol


@dataclass(frozen=True)
class ScenarioTransaction:
    """One of the paper's scenario transactions."""

    name: str
    description: str
    operation: Operation


@dataclass(frozen=True)
class Section5Scenario:
    """Everything needed to re-run the §5.2 analysis."""

    schema: Schema
    compiled: CompiledSchema
    store: ObjectStore
    transactions: tuple[ScenarioTransaction, ...]

    def transaction(self, name: str) -> ScenarioTransaction:
        """Look up a transaction by its paper name (``"T1"`` .. ``"T4"``)."""
        for transaction in self.transactions:
            if transaction.name == name:
                return transaction
        raise KeyError(name)


def build_section5_scenario(extra_c1: int = 3, extra_c2: int = 3) -> Section5Scenario:
    """Build the Figure 1 store and the four transactions of §5.2.

    ``T1`` addresses a dedicated instance of ``c1``; ``T3`` addresses other
    instances, so that T1 and T3 "do not access common instances" as the
    paper assumes.  The ``f2`` flag of every instance is left ``False`` so
    ``m3`` does not reach out to ``c3`` instances (the scenario is about the
    ``c1``/``c2`` hierarchy only).
    """
    schema = figure1_schema()
    compiled = compile_schema(schema)
    store = ObjectStore(schema)

    target = store.create("c1", f1=1, f2=False)
    others = []
    for index in range(extra_c1):
        others.append(store.create("c1", f1=10 + index, f2=False))
    for index in range(extra_c2):
        others.append(store.create("c2", f1=20 + index, f2=False, f5=index))

    transactions = (
        ScenarioTransaction(
            name="T1",
            description="send m1 to one instance of c1",
            operation=MethodCall(oid=target.oid, method="m1", arguments=(1,))),
        ScenarioTransaction(
            name="T2",
            description="send m1 to the extension of class c1 (whole domain)",
            operation=DomainAllCall(class_name="c1", method="m1", arguments=(1,))),
        ScenarioTransaction(
            name="T3",
            description="send m3 to several instances of the domain rooted at c1",
            operation=DomainSomeCall(class_name="c1", method="m3",
                                     oids=tuple(o.oid for o in others))),
        ScenarioTransaction(
            name="T4",
            description="send m4 to all instances of the domain rooted at c2",
            operation=DomainAllCall(class_name="c2", method="m4", arguments=(1, 2))),
    )
    return Section5Scenario(schema=schema, compiled=compiled, store=store,
                            transactions=transactions)


def _jointly_admissible(protocol: ConcurrencyControlProtocol,
                        transactions: tuple[ScenarioTransaction, ...]) -> bool:
    """Whether every transaction of the set can hold its locks at once."""
    lock_manager = protocol.create_lock_manager()
    for txn_number, transaction in enumerate(transactions, start=1):
        plan = protocol.plan(transaction.operation)
        for request in plan.requests:
            try:
                lock_manager.acquire(txn_number, request.resource, request.mode)
            except LockConflictError:
                return False
    return True


def pairwise_compatibility(protocol: ConcurrencyControlProtocol,
                           scenario: Section5Scenario) -> dict[tuple[str, str], bool]:
    """For every pair of scenario transactions, can both hold their locks?"""
    result: dict[tuple[str, str], bool] = {}
    for first, second in itertools.combinations(scenario.transactions, 2):
        compatible = _jointly_admissible(protocol, (first, second))
        result[(first.name, second.name)] = compatible
        result[(second.name, first.name)] = compatible
    return result


def admitted_sets(protocol: ConcurrencyControlProtocol,
                  scenario: Section5Scenario) -> tuple[frozenset[str], ...]:
    """The maximal sets of scenario transactions that may run concurrently.

    A set is admissible when every transaction in it can acquire its full
    lock plan with the others holding theirs; maximal sets are those not
    strictly contained in another admissible set.  The paper's claims are
    statements about exactly these sets.
    """
    names = [t.name for t in scenario.transactions]
    admissible: list[frozenset[str]] = []
    for size in range(1, len(names) + 1):
        for combo in itertools.combinations(scenario.transactions, size):
            if _jointly_admissible(protocol, combo):
                admissible.append(frozenset(t.name for t in combo))
    maximal = [candidate for candidate in admissible
               if not any(candidate < other for other in admissible)]
    return tuple(sorted(maximal, key=lambda s: (len(s), sorted(s))))
