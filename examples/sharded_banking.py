"""Sharded banking: partitioned store, per-shard locks, cross-shard 2PC.

The threaded-banking example funnels every teller through one lock manager;
here the same banking schema runs on a :class:`ShardedObjectStore` split
across four shards, each with its own lock manager and undo log.  A
transaction whose *lock footprint* spans shards commits through two-phase
commit — watch the coordinator's decision log and the ``xshard`` column.
Under OID-hash placement that is most transactions: an instance lock lands
on the instance's shard while the accompanying class-intention lock lands
on the class's, so even a one-account deposit usually prepares two shards
(by-class placement via :class:`ClassShardRouter` keeps such transactions
single-shard instead).  Deadlock detection unions the per-shard waits-for
graphs so cross-shard cycles are still caught and retried.

The last act crashes: a durable engine (write-ahead logs, a checkpoint,
cross-shard 2PC) is abandoned mid-transaction — in-memory state discarded,
exactly what a SIGKILL leaves — and a ``RecoveryRunner`` rebuilds the
committed balances from the files alone, presumed-aborting the transaction
that never got its commit record.

Run with::

    python examples/sharded_banking.py
"""

import queue
import random
import tempfile
import threading

from repro import banking_schema, compile_schema
from repro.engine import Engine, ThroughputHarness
from repro.reporting import format_throughput_table
from repro.sharding import HashShardRouter, ShardedObjectStore
from repro.txn.protocols import TAVProtocol
from repro.wal import Durability, RecoveryRunner

SHARDS = 4
ACCOUNTS = 12
TELLERS = 4
TRANSFERS = 120


def cross_shard_transfers() -> None:
    schema = banking_schema()
    compiled = compile_schema(schema)
    store = ShardedObjectStore(schema, HashShardRouter(SHARDS))
    oids = [store.create("CheckingAccount", balance=1000.0, owner=f"cust-{i}",
                         active=True).oid
            for i in range(ACCOUNTS)]
    print(f"{ACCOUNTS} accounts over {SHARDS} shards; "
          f"instances per shard: {store.shard_sizes()}")
    before = sum(store.read_field(oid, "balance") for oid in oids)

    rng = random.Random(42)
    jobs: "queue.SimpleQueue[tuple]" = queue.SimpleQueue()
    for _ in range(TRANSFERS):
        source, destination = rng.sample(oids, 2)
        jobs.put((source, destination, rng.randint(1, 100)))

    with Engine(TAVProtocol(compiled, store), detection_interval=0.005) as engine:
        def teller() -> None:
            while True:
                try:
                    source, destination, amount = jobs.get_nowait()
                except queue.Empty:
                    return

                def transfer(session, source=source, destination=destination,
                             amount=amount):
                    session.call(source, "deposit", -amount)
                    session.call(destination, "deposit", amount)

                engine.run_transaction(transfer)

        threads = [threading.Thread(target=teller) for _ in range(TELLERS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        after = sum(store.read_field(oid, "balance") for oid in oids)
        cross = engine.metrics.cross_shard_commits
        print(f"{TELLERS} tellers ran {TRANSFERS} transfers on {SHARDS} shards: "
              f"{engine.metrics.committed} committed, {cross} of them "
              f"cross-shard (two-phase commit), "
              f"{engine.metrics.deadlocks} deadlock(s) resolved by retry.")
        last = engine.coordinator.decisions[-1]
        print(f"Last global commit record: txn {last.txn} -> {last.verdict} "
              f"on shards {last.shards}")
        print(f"Total balance before/after: {before} / {after} "
              f"({'conserved' if before == after else 'VIOLATED'})")


def shard_scaling_comparison() -> None:
    harness = ThroughputHarness(instances_per_class=4)  # hot, contended store
    results = [harness.run(TAVProtocol, threads=8, transactions=100,
                           shards=shards, default_lock_timeout=10.0)
               for shards in (1, 2, 4)]
    print("\nWall-clock throughput at 1, 2 and 4 shards, 8 worker threads "
          "(serializability verified by sequential replay):")
    print(format_throughput_table(results))


def crash_and_recover() -> None:
    """Commit durably, crash mid-transaction, rebuild from the logs."""
    schema = banking_schema()
    compiled = compile_schema(schema)
    router = HashShardRouter(SHARDS)
    store = ShardedObjectStore(schema, router)
    oids = [store.create("CheckingAccount", balance=1000.0, owner=f"cust-{i}",
                         active=True).oid for i in range(4)]
    state_dir = tempfile.mkdtemp(prefix="repro-crash-demo-")
    durability = Durability.fsynced(state_dir)

    engine = Engine(TAVProtocol(compiled, store), durability=durability)
    committed = engine.begin(label="paid")
    committed.call(oids[0], "deposit", -250.0)
    committed.call(oids[1], "deposit", 250.0)
    committed.commit()
    doomed = engine.begin(label="crashed-mid-transfer")
    doomed.call(oids[2], "deposit", -999.0)  # one leg applied, then: crash
    print(f"\nDurable engine in {state_dir}: one transfer committed, one "
          f"in flight with a dirty write "
          f"(live balance of account 3: "
          f"{store.read_field(oids[2], 'balance')}).")
    engine.close()  # the crash: in-memory store and undo logs are gone

    result = RecoveryRunner(durability, schema, router=router).recover()
    recovered = result.store
    balances = [recovered.read_field(oid, "balance") for oid in oids]
    print(f"Recovered balances from checkpoint + WAL: {balances} "
          f"(sum {sum(balances)}, endowment 4000.0).")
    print(f"Transaction {result.report.winners} redone from its commit "
          f"record; {result.report.in_doubt} presumed aborted (no commit "
          f"record) — the dirty -999.0 never happened.")


def main() -> None:
    cross_shard_transfers()
    shard_scaling_comparison()
    crash_and_recover()


if __name__ == "__main__":
    main()
