"""Compare all five concurrency-control protocols on one workload.

Runs the same seeded workload through the discrete-event simulator under the
paper's protocol and the four baselines, and prints the structural metrics
(lock requests, control points, waits, deadlocks, throughput proxy).

Run with::

    python examples/protocol_comparison.py [transactions] [seed]
"""

import sys

from repro import banking_schema, compile_schema
from repro.reporting import format_records
from repro.sim import Simulator, WorkloadGenerator, populate_store
from repro.txn.protocols import PROTOCOLS


def main(transactions: int = 12, seed: int = 3) -> None:
    schema = banking_schema()
    compiled = compile_schema(schema)
    rows = []
    for name, protocol_class in PROTOCOLS.items():
        store = populate_store(schema, {"Account": 10, "SavingsAccount": 10,
                                        "CheckingAccount": 10}, seed=seed)
        generator = WorkloadGenerator(schema=schema, store=store, seed=seed + 1,
                                      operations_per_transaction=3,
                                      extent_fraction=0.05, domain_fraction=0.05,
                                      hotspot_fraction=0.4)
        protocol = protocol_class(compiled, store)
        result = Simulator(protocol).run(generator.transactions(transactions))
        rows.append({"protocol": name, **result.metrics.as_row()})

    print(f"Banking workload, {transactions} transactions, seed {seed}:")
    print(format_records(rows, columns=("protocol", "committed", "aborted", "deadlocks",
                                        "lock_requests", "control_points", "waits",
                                        "upgrades", "makespan", "throughput")))
    print("\nReading the table: the paper's protocol ('tav') should show the lowest "
          "lock_requests and control_points, no escalation deadlocks, and the best "
          "throughput; 'field-locking' admits the most concurrency but pays an order "
          "of magnitude more controls; the 'rw-*' baselines conflict on disjoint "
          "fields and escalate.")


if __name__ == "__main__":
    argument_count = len(sys.argv)
    transaction_count = int(sys.argv[1]) if argument_count > 1 else 12
    seed_value = int(sys.argv[2]) if argument_count > 2 else 3
    main(transaction_count, seed_value)
