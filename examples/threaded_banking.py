"""Threaded banking example: real blocking locks, deadlocks and throughput.

The single-threaded examples surface conflicts as immediate
``LockConflictError``\\ s; here the same banking schema runs under the
multi-threaded engine — conflicting sessions *block*, a background detector
aborts deadlock victims, and ``run_transaction`` retries them until the
transfer commits.  The second half replays a seeded workload across worker
threads under the paper's protocol and the read/write baseline and prints
the wall-clock commits/sec comparison, with the serializability of every run
verified against a sequential replay of its commit order.

Run with::

    python examples/threaded_banking.py
"""

import queue
import random
import threading

from repro import ObjectStore, banking_schema, compile_schema
from repro.engine import Engine, ThroughputHarness
from repro.reporting import format_throughput_table
from repro.txn.protocols import RWInstanceProtocol, TAVProtocol

ACCOUNTS = 8
TELLERS = 4
TRANSFERS = 120


def concurrent_transfers() -> None:
    schema = banking_schema()
    compiled = compile_schema(schema)
    store = ObjectStore(schema)
    oids = [store.create("CheckingAccount", balance=1000.0, owner=f"cust-{i}",
                         active=True).oid
            for i in range(ACCOUNTS)]
    before = sum(store.read_field(oid, "balance") for oid in oids)

    rng = random.Random(42)
    jobs: "queue.SimpleQueue[tuple]" = queue.SimpleQueue()
    for _ in range(TRANSFERS):
        source, destination = rng.sample(oids, 2)
        jobs.put((source, destination, rng.randint(1, 100)))

    with Engine(TAVProtocol(compiled, store), detection_interval=0.005) as engine:
        def teller() -> None:
            while True:
                try:
                    source, destination, amount = jobs.get_nowait()
                except queue.Empty:
                    return

                def transfer(session, source=source, destination=destination,
                             amount=amount):
                    session.call(source, "deposit", -amount)
                    session.call(destination, "deposit", amount)

                engine.run_transaction(transfer)

        threads = [threading.Thread(target=teller) for _ in range(TELLERS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        after = sum(store.read_field(oid, "balance") for oid in oids)
        print(f"{TELLERS} teller threads ran {TRANSFERS} transfers: "
              f"{engine.metrics.committed} committed, "
              f"{engine.metrics.deadlocks} deadlock(s) resolved by retry.")
        print(f"Total balance before/after: {before} / {after} "
              f"({'conserved' if before == after else 'VIOLATED'})")


def throughput_comparison() -> None:
    harness = ThroughputHarness()  # banking schema, seeded workload
    results = [harness.run(protocol_class, threads=4, transactions=100,
                           default_lock_timeout=10.0)
               for protocol_class in (TAVProtocol, RWInstanceProtocol)]
    print("\nWall-clock throughput, 4 worker threads, 100 transactions "
          "(serializability verified by sequential replay):")
    print(format_throughput_table(results))


def main() -> None:
    concurrent_transfers()
    throughput_comparison()


if __name__ == "__main__":
    main()
