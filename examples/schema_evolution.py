"""Schema evolution: commutativity is re-derived automatically.

The paper motivates automation with schemas whose methods are "frequently
added, removed, or updated" (§3): nobody wants to maintain hand-written
commutativity tables through that churn.  This example adds a method to a
subclass, recompiles only the affected classes, and shows how the
commutativity relation changes without anyone editing a table.

Run with::

    python examples/schema_evolution.py
"""

from repro import SchemaBuilder, compile_schema
from repro.reporting import format_commutativity_table
from repro.schema.method import MethodDefinition


def main() -> None:
    schema = (
        SchemaBuilder()
        .define("Document")
            .field("title", "string")
            .field("views", "integer")
            .method("view", body="views := views + 1")
            .method("describe", body="return format(title)")
        .define("Article", "Document")
            .field("reviews", "integer")
        .build()
    )
    compiled = compile_schema(schema)

    print("Commutativity relation of Article before the change:")
    print(format_commutativity_table(compiled.commutativity_table("Article")))

    # A developer adds a review method that only touches the subclass field...
    article = schema.get_class("Article")
    article.add_method(MethodDefinition.from_source(
        "review", (), "reviews := reviews + 1", "Article"))
    # ...and another one that overrides `view` to also count a review read.
    article.add_method(MethodDefinition.from_source(
        "view", (), "send Document.view to self\nreviews := reviews", "Article"))
    schema.validate()

    affected = compiled.recompile_after_method_change("Article")
    print(f"\nRecompiled classes after the change: {', '.join(affected)}")
    print("\nCommutativity relation of Article after the change:")
    print(format_commutativity_table(compiled.commutativity_table("Article")))
    print("\nNote: 'review' commutes with 'describe' and with the old readers, "
          "and the overridden 'view' still conflicts with itself — all derived "
          "from the source code, no table was written by hand.")


if __name__ == "__main__":
    main()
