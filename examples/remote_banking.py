"""Remote banking: a server process, two socket clients, conserved money.

The engine of :mod:`examples.threaded_banking` becomes a *service* here:

1. a ``python -m repro.api.server`` subprocess serves the banking schema
   over TCP with admission control (at most 4 transactions in flight, a
   short FIFO queue, typed ``Overloaded`` answers beyond that);
2. two socket clients — separate connections, separate threads, in *this*
   process — hammer it with concurrent transfers through
   :class:`repro.api.TransactionRunner`, which retries deadlock victims and
   backs off on overload exactly like ``Engine.run_transaction`` does
   in-process;
3. the control plane then audits the result: every transfer is
   balance-neutral, so the sum over all accounts must be exactly what the
   server started with.

Run with::

    python examples/remote_banking.py
"""

import random
import signal
import threading

from repro.api import TransactionRunner
from repro.api.client import connect
from repro.api.server import spawn

TELLERS = 2
TRANSFERS_PER_TELLER = 40
INSTANCES_PER_CLASS = 4  # the server default — a small, hot bank


def main() -> None:
    print("spawning the server process ...")
    process, address = spawn(protocol="tav", shards=2,
                             instances=INSTANCES_PER_CLASS,
                             max_in_flight=4, max_queue=4, queue_timeout=0.2)
    try:
        control = connect(address)
        info = control.describe()
        print(f"serving {info['protocol']} with {info['shards']} shards at "
              f"{address[0]}:{address[1]}, admission {info['admission']}")

        accounts = sorted(control.store_state())
        total_before = sum(values["balance"]
                           for values in control.store_state().values())
        print(f"{len(accounts)} instances hold {total_before:.2f} in total\n")

        overloads = [0] * TELLERS
        retries = [0] * TELLERS

        def teller(index: int) -> None:
            connection = connect(address)  # one socket per client
            try:
                runner = TransactionRunner(connection, seed=index)
                rng = random.Random(1000 + index)
                state = connection.store_state()
                oids = [oid for oid, values in state.items()
                        if "balance" in values]
                from repro.objects.oid import OID

                def parse(name: str) -> OID:
                    class_name, _, number = name.rpartition("#")
                    return OID(class_name=class_name, number=int(number))

                targets = [parse(name) for name in oids]
                for _ in range(TRANSFERS_PER_TELLER):
                    source, destination = rng.sample(targets, 2)
                    amount = float(rng.randint(1, 50))

                    def transfer(session, source=source,
                                 destination=destination, amount=amount):
                        session.call(source, "deposit", -amount)
                        session.call(destination, "deposit", amount)

                    runner.run(transfer, label=f"teller-{index}")
                overloads[index] = runner.overloads
                retries[index] = runner.retries
            finally:
                connection.close()

        threads = [threading.Thread(target=teller, args=(index,),
                                    name=f"teller-{index}")
                   for index in range(TELLERS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        state = control.store_state()
        total_after = sum(values["balance"] for values in state.values())
        committed = len(control.commit_log())
        print(f"{TELLERS} socket clients committed {committed} transactions "
              f"({sum(retries)} deadlock/timeout retries, "
              f"{sum(overloads)} admission back-offs)")
        print(f"total before: {total_before:.2f}  after: {total_after:.2f}")
        assert total_after == total_before, "conservation violated!"
        print("conservation holds — every transfer was atomic end to end")
        control.close()
    finally:
        process.send_signal(signal.SIGTERM)
        process.wait(timeout=15.0)
        print("server shut down cleanly")


if __name__ == "__main__":
    main()
