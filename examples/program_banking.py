"""Program banking: whole transactions over one socket round trip.

:mod:`examples.remote_banking` drives a server with one round trip per
command — Begin, each Call, Commit.  This example ships the same transfers
as server-side *programs* instead: ``connection.run_program([...])`` sends
one frame carrying the operation list, and the server runs begin, the
operations, commit — **and the deadlock-retry loop, carrying wait-die
seniority across incarnations** — before answering with one reply frame.

1. a ``python -m repro.api.server`` subprocess serves the banking schema;
2. a warm-up measures the arithmetic on the control plane's frame counter:
   a 2-operation transfer costs 4 reply frames per commit on the
   per-command path and exactly 1 on the program path;
3. contending tellers then hammer the server with transfer programs — the
   retries the server performed come back in each reply, no client loop —
   and the control plane audits conservation.

Run with::

    python examples/program_banking.py
"""

import random
import signal
import threading

from repro.api import TransactionRunner
from repro.api.client import connect
from repro.api.server import spawn
from repro.objects.oid import OID
from repro.txn.operations import MethodCall

TELLERS = 2
TRANSFERS_PER_TELLER = 40
WARMUP_TRANSFERS = 10
INSTANCES_PER_CLASS = 4  # the server default — a small, hot bank


def parse(name: str) -> OID:
    class_name, _, number = name.rpartition("#")
    return OID(class_name=class_name, number=int(number))


def transfer_program(source: OID, destination: OID,
                     amount: float) -> list[MethodCall]:
    return [MethodCall(oid=source, method="deposit", arguments=(-amount,)),
            MethodCall(oid=destination, method="deposit", arguments=(amount,))]


def main() -> None:
    print("spawning the server process ...")
    process, address = spawn(protocol="tav", shards=2,
                             instances=INSTANCES_PER_CLASS)
    try:
        control = connect(address)
        info = control.describe()
        print(f"serving {info['protocol']} with {info['shards']} shards at "
              f"{address[0]}:{address[1]}")
        targets = [parse(name) for name, values
                   in control.store_state().items() if "balance" in values]
        total_before = sum(values["balance"]
                           for values in control.store_state().values())
        print(f"{len(targets)} accounts hold {total_before:.2f} in total\n")

        # -- the arithmetic: reply frames per committed transfer ------------
        client = connect(address)
        runner = TransactionRunner(client, seed=99)
        frames_before = control.metrics()["metrics"]["frames_sent"]
        for index in range(WARMUP_TRANSFERS):
            source, destination = targets[index % len(targets)], \
                targets[(index + 1) % len(targets)]
            runner.run(lambda session, s=source, d=destination:
                       (session.call(s, "deposit", -1.0),
                        session.call(d, "deposit", 1.0)),
                       label="per-command")
        per_command = (control.metrics()["metrics"]["frames_sent"] - frames_before
                       # the metrics() probes themselves cost one frame each
                       - 1) / WARMUP_TRANSFERS
        frames_before = control.metrics()["metrics"]["frames_sent"]
        for index in range(WARMUP_TRANSFERS):
            client.run_program(
                transfer_program(targets[index % len(targets)],
                                 targets[(index + 1) % len(targets)], 1.0),
                label="program")
        program = (control.metrics()["metrics"]["frames_sent"] - frames_before
                   - 1) / WARMUP_TRANSFERS
        print(f"reply frames per 2-operation transfer: "
              f"{per_command:.1f} per-command vs {program:.1f} as a program")
        client.close()

        # -- contending tellers, one round trip per transfer ----------------
        server_retries = [0] * TELLERS

        def teller(index: int) -> None:
            connection = connect(address)  # one socket per client
            try:
                rng = random.Random(1000 + index)
                retries = 0
                for _ in range(TRANSFERS_PER_TELLER):
                    source, destination = rng.sample(targets, 2)
                    reply = connection.run_program(
                        transfer_program(source, destination,
                                         float(rng.randint(1, 50))),
                        label=f"teller-{index}", max_retries=20)
                    retries += reply.retries
                server_retries[index] = retries
            finally:
                connection.close()

        threads = [threading.Thread(target=teller, args=(index,),
                                    name=f"teller-{index}")
                   for index in range(TELLERS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        total_after = sum(values["balance"]
                          for values in control.store_state().values())
        committed = len(control.commit_log())
        print(f"{TELLERS} clients committed {committed} transactions, one "
              f"round trip each ({sum(server_retries)} retries ran "
              f"server-side, seniority preserved)")
        print(f"total before: {total_before:.2f}  after: {total_after:.2f}")
        assert total_after == total_before, "conservation violated!"
        print("conservation holds — every program was atomic end to end")
        control.close()
    finally:
        process.send_signal(signal.SIGTERM)
        process.wait(timeout=15.0)
        print("server shut down cleanly")


if __name__ == "__main__":
    main()
