"""Traced banking: one transaction, one connected trace across processes.

A two-worker cluster (``Engine(shard_workers=2)``) runs a handful of
cross-shard transfers with end-to-end tracing enabled.  Every stage of
each traced transaction records a span — the API command, lock acquires
(with how long each waited), method execution, the per-participant
prepares, the decision-log barrier, phase two, lock release — and the
shard worker *processes* record their own spans parented into the same
trace over the RPC trace context.  At the end the engine drains the
workers' spans and writes everything as one Chrome-trace-format JSON
file: load it in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing`` and each process gets its own lane.

The same run also shows the metrics side: commit-latency percentiles
from the mergeable histograms, and the ``Stats`` command's per-shard
breakdown with the cluster's hottest resources by lock-wait time.

Run with::

    python examples/traced_banking.py [trace.json]
"""

import random
import sys
import threading

from repro.api.connection import InProcessConnection, TransactionRunner
from repro.core.compiler import compile_schema
from repro.engine import Engine
from repro.engine.metrics import EngineMetrics
from repro.obs import Tracer
from repro.schema import banking_schema
from repro.sharding.router import HashShardRouter
from repro.sharding.store import ShardedObjectStore
from repro.sim.workload import populate_store
from repro.txn.protocols import TAVProtocol

TELLERS = 3
TRANSFERS_PER_TELLER = 8
INSTANCES_PER_CLASS = 4
SEED = 11


def main() -> None:
    trace_path = sys.argv[1] if len(sys.argv) > 1 else "trace.json"
    schema = banking_schema()
    compiled = compile_schema(schema)
    router = HashShardRouter(2)
    mirror = populate_store(schema, INSTANCES_PER_CLASS, seed=SEED,
                            store=ShardedObjectStore(schema, router))
    accounts = list(mirror.extent("Account"))

    print("spawning one worker process per shard, tracing every transaction ...")
    engine = Engine(TAVProtocol(compiled, mirror), shard_workers=2,
                    default_lock_timeout=5.0, tracer=Tracer(),
                    worker_options={"schema": "banking",
                                    "instances": INSTANCES_PER_CLASS,
                                    "populate_seed": SEED})
    connection = InProcessConnection(engine)

    def teller(index: int) -> None:
        rng = random.Random(1000 + index)
        runner = TransactionRunner(connection, seed=index)
        for _ in range(TRANSFERS_PER_TELLER):
            debit, credit = rng.sample(accounts, 2)
            amount = round(rng.uniform(1.0, 10.0), 2)

            def transfer(session):
                session.call(debit, "withdraw", amount)
                session.call(credit, "deposit", amount)

            runner.run(transfer, label=f"teller-{index}")

    threads = [threading.Thread(target=teller, args=(index,))
               for index in range(TELLERS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    metrics = EngineMetrics.from_snapshot(engine.cluster_metrics())
    print(f"  {metrics.committed} transfers committed "
          f"({metrics.cross_shard_commits} cross-shard)")
    print("  commit latency: "
          f"p50 {metrics.commit_percentile(50) * 1000:.2f} ms, "
          f"p95 {metrics.commit_percentile(95) * 1000:.2f} ms, "
          f"p99 {metrics.commit_percentile(99) * 1000:.2f} ms")

    stats = connection.stats(top=3)
    print("  hottest resources by lock-wait time:")
    for entry in stats["hot_resources"] or [{"resource": "(no contention)",
                                             "waits": 0, "wait_time": 0.0}]:
        print(f"    {entry['resource']}: {entry['waits']} waits, "
              f"{entry['wait_time'] * 1000:.2f} ms waited")

    events = engine.export_trace(trace_path)
    print(f"\nwrote {events} spans to {trace_path} "
          f"(engine pid plus {len(engine.shard_clients)} worker lanes)")
    print("open it in https://ui.perfetto.dev or chrome://tracing")
    engine.close()


if __name__ == "__main__":
    main()
