"""Library example: messages that cross instance boundaries.

``Member.checkout`` sends ``borrow_copy`` to the ``Book`` referenced by its
``borrowing`` field.  The example shows how the paper's protocol controls the
member once and the book once (each entry message is one control point), and
how the recovery manager undoes a cancelled checkout on both instances.

Run with::

    python examples/library_catalogue.py
"""

from repro import ObjectStore, compile_schema, library_schema
from repro.reporting import format_access_vectors
from repro.txn import MethodCall, TransactionManager
from repro.txn.protocols import TAVProtocol


def main() -> None:
    schema = library_schema()
    compiled = compile_schema(schema)
    store = ObjectStore(schema)

    print("Transitive access vectors of Member:")
    print(format_access_vectors(compiled.compiled_class("Member")))
    print("\nTransitive access vectors of Book:")
    print(format_access_vectors(compiled.compiled_class("Book")))

    book = store.create("Book", title="On Lisp", copies=2)
    member = store.create("Member", name="bob", borrowing=book.oid)

    protocol = TAVProtocol(compiled, store)
    plan = protocol.plan(MethodCall(oid=member.oid, method="checkout"))
    print(f"\ncheckout needs {plan.control_points} concurrency controls "
          f"({len(plan.requests)} lock requests): one for the member, one for the book.")
    for request in plan.requests:
        print(f"  {request.resource} -> {request.mode}")

    manager = TransactionManager(protocol)

    txn = manager.begin()
    manager.call(txn, member.oid, "checkout")
    print(f"\nAfter checkout: loans={store.read_field(member.oid, 'loans')}, "
          f"borrowed={store.read_field(book.oid, 'borrowed')}")
    manager.commit(txn)

    cancelled = manager.begin()
    manager.call(cancelled, member.oid, "checkout")
    print(f"Second checkout in flight: borrowed={store.read_field(book.oid, 'borrowed')}")
    manager.abort(cancelled)
    print(f"After aborting it:         loans={store.read_field(member.oid, 'loans')}, "
          f"borrowed={store.read_field(book.oid, 'borrowed')} "
          "(both instances restored from access-vector projections)")


if __name__ == "__main__":
    main()
