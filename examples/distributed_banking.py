"""Distributed banking: the engine plus N shard worker *processes*.

Three acts:

1. ``Engine(shard_workers=2)`` spawns two ``python -m repro.sharding.worker``
   subprocesses — each owns one shard's store partition, lock manager, undo
   log and write-ahead log — and four teller threads in this process run
   cross-shard transfers through it.  Locking, execution and two-phase
   commit all travel over the participant RPC layer; deadlock victims are
   found by unioning waits-for graphs *across processes*.
2. One worker is killed in the in-doubt window: it votes yes (its PREPARED
   marker and redo images are durably on disk), then dies before phase two
   can reach it.  The commit stands — the coordinator's decision log made
   the outcome durable first — and the engine keeps serving the surviving
   shard.
3. The dead worker is restarted over the same durability directory and
   recovers *itself*: checkpoint, WAL replay, and the in-doubt transaction
   resolved against the coordinator's decision log (commit record → redo;
   none → presumed abort).  The audit then sums every account across both
   partitions: the money is conserved through crash and recovery.

Run with::

    python examples/distributed_banking.py
"""

import random
import tempfile
import threading
from pathlib import Path

from repro.core.compiler import compile_schema
from repro.engine import Engine
from repro.errors import DeadlockError, ParticipantUnavailable
from repro.schema import banking_schema
from repro.sharding.router import HashShardRouter
from repro.sharding.rpc import RemoteShardClient
from repro.sharding.store import ShardedObjectStore
from repro.sharding.worker import spawn as spawn_worker
from repro.sim.workload import populate_store
from repro.txn.protocols import TAVProtocol
from repro.wal import Durability

TELLERS = 4
TRANSFERS_PER_TELLER = 15
INSTANCES_PER_CLASS = 4
SEED = 11


def total_balance(snapshots) -> float:
    return sum(values["balance"]
               for snapshot in snapshots
               for values in snapshot.values()
               if "balance" in values)


def main() -> None:
    schema = banking_schema()
    compiled = compile_schema(schema)
    router = HashShardRouter(2)
    mirror = populate_store(schema, INSTANCES_PER_CLASS, seed=SEED,
                            store=ShardedObjectStore(schema, router))
    accounts = list(mirror.extent("Account"))
    wal_dir = Path(tempfile.mkdtemp(prefix="repro-distributed-"))

    print("act 1: spawning one worker process per shard ...")
    engine = Engine(TAVProtocol(compiled, mirror), shard_workers=2,
                    default_lock_timeout=5.0,
                    durability=Durability.fsynced(wal_dir),
                    worker_options={"schema": "banking",
                                    "instances": INSTANCES_PER_CLASS,
                                    "populate_seed": SEED})
    before = total_balance([engine.store_state()])
    print(f"  {len(accounts)} accounts across 2 worker processes hold "
          f"{before:.2f} in total")

    deadlocks = 0

    def teller(index: int) -> None:
        nonlocal deadlocks
        rng = random.Random(1000 + index)
        for _ in range(TRANSFERS_PER_TELLER):
            debit, credit = rng.sample(accounts, 2)
            amount = round(rng.uniform(1.0, 10.0), 2)

            def transfer(session):
                session.call(debit, "withdraw", amount)
                session.call(credit, "deposit", amount)

            try:
                engine.run_transaction(transfer, label=f"teller-{index}")
            except DeadlockError:
                deadlocks += 1

    threads = [threading.Thread(target=teller, args=(index,))
               for index in range(TELLERS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    committed = engine.metrics.committed
    print(f"  {committed} transfers committed "
          f"({engine.metrics.cross_shard_commits} cross-shard, "
          f"{engine.metrics.deadlocks} deadlocks broken)")

    print("\nact 2: killing worker 1 in the in-doubt window ...")
    a = next(oid for oid in accounts if router.shard_of_oid(oid) == 0)
    b = next(oid for oid in accounts if router.shard_of_oid(oid) == 1)
    engine.shard_clients[1].inject_fault("exit_after_prepare_reply")
    with engine.begin(label="fatal-transfer") as session:
        session.call(a, "withdraw", 10.0)
        session.call(b, "deposit", 10.0)
    print("  worker 1 voted yes (durably), then died before phase two —")
    print("  the commit stands: the decision log is the durability point")
    survivor = engine.shard_clients[0].snapshot()
    try:
        engine.shard_clients[1].snapshot()
    except ParticipantUnavailable as error:
        print(f"  as expected, shard 1 is unreachable: {error}")
    engine.close()

    print("\nact 3: restarting worker 1 over the same durability directory ...")
    process, address = spawn_worker(shard_id=1, shards=2, protocol="tav",
                                    schema="banking",
                                    instances=INSTANCES_PER_CLASS,
                                    populate_seed=SEED, durability="fsync",
                                    wal_dir=wal_dir)
    client = RemoteShardClient(1, address)
    try:
        report = client.hello()["recovery"]
        print(f"  per-participant recovery: {len(report['winners'])} winners "
              f"redone, {len(report['losers'])} losers undone, "
              f"in-doubt resolved: {report['in_doubt'] or 'none'}")
        recovered = client.snapshot()
        after = total_balance([survivor, recovered])
        print(f"  audit across both partitions: {after:.2f} "
              f"(started with {before:.2f})")
        if abs(after - before) > 1e-6:
            raise SystemExit("conservation violated!")
        print("  money conserved through crash and recovery ✔")
    finally:
        client.shutdown()
        client.close()
        process.wait(timeout=10.0)


if __name__ == "__main__":
    main()
