"""The paper's worked example, end to end.

Rebuilds Figure 1, prints every artefact of the paper (Table 1, the direct
and transitive access vectors, Figure 2, Table 2) and replays the §5.2
scenario under the paper's protocol and the two classical baselines.

Run with::

    python examples/paper_figure1.py
"""

from repro import compile_schema, figure1_schema
from repro.reporting import (
    describe_resolution_graph,
    describe_schema,
    format_access_vectors,
    format_commutativity_table,
    format_compatibility_table,
    format_scenario_report,
)
from repro.sim import admitted_sets, build_section5_scenario, pairwise_compatibility
from repro.txn.protocols import RelationalProtocol, RWInstanceProtocol, TAVProtocol


def main() -> None:
    schema = figure1_schema()
    compiled = compile_schema(schema)

    print("Figure 1 - the example hierarchy")
    print(describe_schema(schema))

    print("\nTable 1 - classical compatibility relation")
    print(format_compatibility_table())

    c2 = compiled.compiled_class("c2")
    print("\nDirect access vectors of class c2 (definition 6)")
    print(format_access_vectors(c2, transitive=False))

    print("\nFigure 2 - late-binding resolution graph of class c2 (definition 9)")
    print(describe_resolution_graph(c2.resolution_graph))

    print("\nTransitive access vectors of class c2 (definition 10, section 4.3)")
    print(format_access_vectors(c2))

    print("\nTable 2 - commutativity relation of class c2 (section 5.1)")
    print(format_commutativity_table(c2.commutativity, order=("m1", "m2", "m3", "m4")))

    scenario = build_section5_scenario()
    protocols = {
        "tav (the paper)": TAVProtocol(scenario.compiled, scenario.store),
        "read/write instances": RWInstanceProtocol(scenario.compiled, scenario.store),
        "relational schema": RelationalProtocol(scenario.compiled, scenario.store),
    }
    report = format_scenario_report(
        scenario, protocols,
        pairwise={name: pairwise_compatibility(p, scenario)
                  for name, p in protocols.items()},
        admitted={name: admitted_sets(p, scenario) for name, p in protocols.items()})
    print("\n" + report)


if __name__ == "__main__":
    main()
