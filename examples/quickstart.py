"""Quickstart: define a schema, compile it, and run two concurrent transactions.

Run with::

    python examples/quickstart.py
"""

from repro import ObjectStore, SchemaBuilder, compile_schema
from repro.errors import LockConflictError
from repro.reporting import format_access_vectors, format_commutativity_table
from repro.txn import TransactionManager
from repro.txn.protocols import TAVProtocol


def main() -> None:
    # 1. Define a small schema in the method definition language.
    schema = (
        SchemaBuilder()
        .define("Counter")
            .field("value", "integer")
            .field("resets", "integer")
            .method("increment", "amount", body="value := value + amount")
            .method("read", body="return value")
            .method("reset", body="""
                value := 0
                resets := resets + 1
            """)
        .build()
    )

    # 2. Compile it: access vectors, commutativity tables, access modes.
    compiled = compile_schema(schema)
    counter_class = compiled.compiled_class("Counter")
    print("Transitive access vectors:")
    print(format_access_vectors(counter_class))
    print("\nCommutativity relation (one access mode per method):")
    print(format_commutativity_table(counter_class.commutativity))

    # 3. Create objects and run transactions under the paper's protocol.
    store = ObjectStore(schema)
    counter = store.create("Counter", value=10)
    manager = TransactionManager(TAVProtocol(compiled, store))

    t1 = manager.begin()
    t2 = manager.begin()

    manager.call(t1, counter.oid, "increment", 5)
    print("\nT1 incremented the counter (holds the 'increment' mode).")

    # 'read' conflicts with 'increment' (it reads the value being written),
    # so T2 is refused until T1 commits.
    try:
        manager.call(t2, counter.oid, "read")
    except LockConflictError as error:
        print(f"T2 read refused while T1 is active: {error}")

    manager.commit(t1)
    value = manager.call(t2, counter.oid, "read")
    print(f"After T1 committed, T2 reads value = {value}")
    manager.commit(t2)

    print("\nNext steps: examples/threaded_banking.py runs the same protocols "
          "under real threads with blocking locks, and "
          "examples/sharded_banking.py partitions the store and lock managers "
          "across shards with cross-shard two-phase commit and ends with a "
          "crash-and-recover demo of the write-ahead log "
          "(python -m repro.engine.harness --shards 4 --durability fsync "
          "benchmarks both; see README.md for the durability modes and the "
          "presumed-abort recovery rule).")


if __name__ == "__main__":
    main()
