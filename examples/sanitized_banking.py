"""Sanitized banking: the runtime sanitizer catching a buggy protocol.

Two runs over the same two-account store.  The first uses the paper's
TAV protocol with ``Engine(sanitize=True)``: every field access is
checked against the held locks, the compiled access-vector footprint
and the undo log, and a balance-neutral transfer commits with zero
violations.  The second swaps in a deliberately broken protocol — a
TAV subclass that "optimises away" its lock requests — and the
sanitizer stops the very first unprotected read with a typed
``SanitizerError`` naming the check (S1, lock coverage), the
transaction, the resource and the (empty) set of held locks.

Run with::

    python examples/sanitized_banking.py
"""

from repro.core.compiler import compile_schema
from repro.engine import Engine
from repro.errors import SanitizerError
from repro.objects import ObjectStore
from repro.schema import banking_schema
from repro.txn.protocols import TAVProtocol
from repro.txn.protocols.base import LockPlan


class LocklessTAVProtocol(TAVProtocol):
    """A plausible-looking 'optimisation': plan every operation, request
    no locks.  Fast, wrong, and invisible to single-threaded tests —
    exactly the kind of bug the sanitizer exists to catch."""

    def plan(self, operation):
        base = super().plan(operation)
        return LockPlan(requests=(), control_points=base.control_points,
                        receivers=base.receivers,
                        undo_projections=base.undo_projections)


def build_store(schema):
    store = ObjectStore(schema)
    store.create("Account", balance=100.0, owner="alice", active=True)
    store.create("Account", balance=100.0, owner="bob", active=True)
    return store


def main() -> None:
    schema = banking_schema()
    compiled = compile_schema(schema)

    print("1. a correct protocol under the sanitizer ...")
    store = build_store(schema)
    alice, bob = store.extent("Account")
    with Engine(TAVProtocol(compiled, store), sanitize=True) as engine:
        def transfer(session):
            session.call(alice, "withdraw", 25.0)
            session.call(bob, "deposit", 25.0)

        engine.run_transaction(transfer)
        print(f"   transfer committed; balances "
              f"{store.read_field(alice, 'balance'):.2f} / "
              f"{store.read_field(bob, 'balance'):.2f}, "
              f"{engine.sanitizer.violations} sanitizer violations")

    print("\n2. a protocol that skips its lock requests ...")
    store = build_store(schema)
    alice, bob = store.extent("Account")
    with Engine(LocklessTAVProtocol(compiled, store), sanitize=True) as engine:
        try:
            engine.run_transaction(transfer)
        except SanitizerError as error:
            print(f"   caught check {error.check}: {error}")
            print(f"   held locks at the access: {list(error.held)!r}")
            print(f"   violations recorded: {engine.sanitizer.violations}")
        else:
            raise SystemExit("the sanitizer should have fired")


if __name__ == "__main__":
    main()
