"""Banking example: commutativity-based locking on an account hierarchy.

Shows the three §3 problems on a realistic schema and how the compiled
access modes avoid them: disjoint-field writers run concurrently, code reuse
costs a single concurrency control, and no read-to-write escalation occurs.

Run with::

    python examples/banking.py
"""

from repro import ObjectStore, banking_schema, compile_schema
from repro.errors import LockConflictError
from repro.reporting import format_commutativity_table, format_records
from repro.sim import Simulator, WorkloadGenerator, populate_store
from repro.txn import TransactionManager
from repro.txn.protocols import RWInstanceProtocol, TAVProtocol


def interactive_session() -> None:
    schema = banking_schema()
    compiled = compile_schema(schema)
    store = ObjectStore(schema)

    print("Commutativity relation of CheckingAccount:")
    print(format_commutativity_table(
        compiled.commutativity_table("CheckingAccount")))

    checking = store.create("CheckingAccount", balance=100.0, owner="ada", active=True)
    manager = TransactionManager(TAVProtocol(compiled, store))

    auditor = manager.begin()
    teller = manager.begin()

    # The auditor adjusts the overdraft limit while the teller charges a fee:
    # two writers on the same instance, but on disjoint fields - they commute.
    manager.call(auditor, checking.oid, "set_overdraft", 500)
    manager.call(teller, checking.oid, "charge_fee", 2.5)
    print("\nset_overdraft and charge_fee ran concurrently on the same account "
          "(both are writers, but their access vectors commute).")

    # A withdrawal conflicts with the fee charge (both may touch the balance
    # and the fee total), so it must wait for the teller.
    try:
        manager.call(auditor, checking.oid, "withdraw", 10.0)
    except LockConflictError:
        print("withdraw had to wait for the teller's transaction, as expected.")

    manager.commit(teller)
    manager.commit(auditor)

    solo = manager.begin()
    manager.call(solo, checking.oid, "withdraw", 10.0)
    manager.commit(solo)
    print(f"Final balance: {store.read_field(checking.oid, 'balance')}, "
          f"fees: {store.read_field(checking.oid, 'fee_total')}")


def simulated_workload() -> None:
    schema = banking_schema()
    compiled = compile_schema(schema)
    rows = []
    for name, protocol_class in (("tav", TAVProtocol), ("rw-instance", RWInstanceProtocol)):
        store = populate_store(schema, 10, seed=1)
        generator = WorkloadGenerator(schema=schema, store=store, seed=2,
                                      operations_per_transaction=3,
                                      hotspot_fraction=0.4)
        result = Simulator(protocol_class(compiled, store)).run(generator.transactions(10))
        rows.append({"protocol": name, **result.metrics.as_row()})
    print("\nSimulated mixed workload (10 transactions):")
    print(format_records(rows, columns=("protocol", "committed", "deadlocks",
                                        "lock_requests", "control_points",
                                        "waits", "throughput")))


def main() -> None:
    interactive_session()
    simulated_workload()


if __name__ == "__main__":
    main()
