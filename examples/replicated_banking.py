"""Replicated banking: hot standbys, a killed primary, and live failover.

Three acts:

1. ``Engine(shard_workers=2, replicas=1)`` spawns, per shard, a *standby*
   worker process and then a primary that ships every appended WAL frame
   to it (LSN-stamped, over the same RPC wire 2PC uses).  Teller threads
   run cross-shard transfers while the standbys replay the stream in the
   background; the per-shard replication lag is read from the same
   ``stats()`` surface the ``Stats`` command renders.
2. Shard 1's primary is killed *after the commit decision is durable but
   before phase two reaches it* — the worst spot.  ``Engine.failover(1)``
   promotes the standby: it resolves the in-flight transaction against
   the coordinator's decision log (commit record → redo; none → presumed
   abort), flips to primary, and the *running* engine re-admits it —
   same client objects, planning mirror resynced from a shard snapshot,
   no restart.
3. The audit: every committed transfer's effect is present exactly once
   on the promoted worker, money is conserved, and the engine keeps
   serving — a transfer after failover lands on the new primary.

Run with::

    python examples/replicated_banking.py
"""

import random
import tempfile
import threading
import time
from pathlib import Path

from repro.core.compiler import compile_schema
from repro.engine import Engine
from repro.errors import DeadlockError
from repro.schema import banking_schema
from repro.sharding.router import HashShardRouter
from repro.sharding.store import ShardedObjectStore
from repro.sharding.worker import FAULT_EXIT
from repro.sim.workload import populate_store
from repro.txn.protocols import TAVProtocol
from repro.wal import Durability

TELLERS = 4
TRANSFERS_PER_TELLER = 10
INSTANCES_PER_CLASS = 4
SEED = 11
REPLICAS = 1


def total_balance(snapshot) -> float:
    return sum(values["balance"] for values in snapshot.values()
               if "balance" in values)


def print_replication(engine) -> None:
    for entry in engine.stats()["shards"]:
        for stream in entry.get("replication") or ():
            state = "synced" if stream["synced"] else "catching up"
            print(f"  shard {entry['shard']} -> {stream['target']}: "
                  f"{state}, acked lsn {stream['acked_lsn']}/"
                  f"{stream['last_lsn']}, lag {stream['lag_records']} "
                  f"record(s)")


def wait_caught_up(engine, timeout=10.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        entries = engine.stats()["shards"]
        streams = [stream for entry in entries
                   for stream in entry.get("replication") or ()]
        if streams and all(s["synced"] and s["lag_records"] == 0
                           for s in streams):
            return
        time.sleep(0.05)
    raise SystemExit("standbys never caught up")


def main() -> None:
    schema = banking_schema()
    compiled = compile_schema(schema)
    router = HashShardRouter(2)
    mirror = populate_store(schema, INSTANCES_PER_CLASS, seed=SEED,
                            store=ShardedObjectStore(schema, router))
    accounts = list(mirror.extent("Account"))
    wal_dir = Path(tempfile.mkdtemp(prefix="repro-replicated-"))

    print("act 1: one hot standby per shard, WAL frames shipped live ...")
    engine = Engine(TAVProtocol(compiled, mirror), shard_workers=2,
                    default_lock_timeout=5.0,
                    durability=Durability.fsynced(wal_dir),
                    worker_options={"schema": "banking",
                                    "instances": INSTANCES_PER_CLASS,
                                    "populate_seed": SEED},
                    replicas=REPLICAS, participant_timeout=10.0)
    try:
        before = total_balance(engine.store_state())
        print(f"  {len(accounts)} accounts, 2 primaries + 2 standbys, "
              f"{before:.2f} in total")

        deadlocks = 0

        def teller(index: int) -> None:
            nonlocal deadlocks
            rng = random.Random(1000 + index)
            for _ in range(TRANSFERS_PER_TELLER):
                debit, credit = rng.sample(accounts, 2)
                amount = round(rng.uniform(1.0, 10.0), 2)

                def transfer(session):
                    session.call(debit, "withdraw", amount)
                    session.call(credit, "deposit", amount)

                try:
                    engine.run_transaction(transfer, label=f"teller-{index}")
                except DeadlockError:
                    deadlocks += 1

        threads = [threading.Thread(target=teller, args=(index,))
                   for index in range(TELLERS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        committed = engine.metrics.committed
        print(f"  {committed} transfers committed "
              f"({engine.metrics.deadlocks} deadlocks broken); "
              f"replication streams after the burst:")
        wait_caught_up(engine)
        print_replication(engine)

        print("\nact 2: killing shard 1's primary after the commit decision,")
        print("       before phase two — then promoting its standby ...")
        a = next(oid for oid in accounts if router.shard_of_oid(oid) == 0)
        b = next(oid for oid in accounts if router.shard_of_oid(oid) == 1)
        engine.shard_clients[1].inject_fault("exit_after_decision")
        with engine.begin(label="fatal-transfer") as session:
            session.call(a, "withdraw", 10.0)
            session.call(b, "deposit", 10.0)
        primary = engine._worker_processes[1 * (REPLICAS + 1) + REPLICAS]
        assert primary.wait(timeout=10.0) == FAULT_EXIT
        print("  the decision log made the commit durable; the primary died")

        report = engine.failover(1)
        promotion = report["promotion"]
        host, port = engine.shard_clients[1].address
        print(f"  standby promoted at {host}:{port}: "
              f"{len(promotion['winners'])} winner(s) redone, "
              f"{len(promotion['losers'])} loser(s) undone "
              f"(presumed abort), mirror resynced, engine still running")

        print("\nact 3: the audit, on the promoted worker ...")
        after = total_balance(engine.store_state())
        print(f"  total across both shards: {after:.2f} "
              f"(started with {before:.2f})")
        if abs(after - before) > 1e-6:
            raise SystemExit("conservation violated!")
        engine.run_transaction(
            lambda session: (session.call(a, "withdraw", 1.0),
                             session.call(b, "deposit", 1.0)),
            label="post-failover")
        stats = engine.stats()
        roles = {entry["shard"]: entry["role"] for entry in stats["shards"]}
        print(f"  post-failover transfer committed; roles now {roles}, "
              f"failovers recorded: {stats['failovers']}")
        print("  money conserved through kill and failover ✔")
    finally:
        engine.close()


if __name__ == "__main__":
    main()
