"""Setuptools entry point.

All metadata lives here (no ``pyproject.toml``) so that editable installs
work in offline environments whose setuptools predates PEP 660 support (no
``wheel`` package available).  The library itself has zero runtime
dependencies; the ``bench`` extra names the optional tooling used by the
``benchmarks/`` suite and installs the ``repro-bench`` console script, which
is the same entry point as ``python -m repro.engine.harness``.
"""

from setuptools import find_packages, setup

setup(
    name="repro-maltam93",
    version="1.6.0",
    description=("Reproduction of Malta & Martinez (ICDE 1993): automated "
                 "fine-grained concurrency control for object-oriented "
                 "databases, with a multi-threaded execution engine"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.11",
    install_requires=[],
    extras_require={
        "bench": ["pytest", "pytest-benchmark"],
        "test": ["pytest", "hypothesis"],
    },
    entry_points={
        "console_scripts": [
            "repro-bench = repro.engine.harness:main",
            "repro-lint = repro.analysis.linter:main",
        ],
    },
)
